/**
 * @file
 * Checkpoint/restore determinism: a run that is snapshotted mid-flight
 * (from inside the run loop, exactly as --checkpoint-every does),
 * "killed", and resumed in a fresh System must be indistinguishable
 * from the straight-through run — same architectural result, same
 * cumulative instruction/cycle totals, and a byte-identical component
 * stats JSON dump. Also drives the differ's lockstep resume check on a
 * generated program, which exercises vector state and trap paths the
 * fixed workloads don't.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/differ.h"
#include "check/progen.h"
#include "core/system.h"
#include "snap/snapshot.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{

namespace
{

struct RunDump
{
    std::string json;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    bool ok = false;
};

RunDump
dumpOf(System &sys, const RunResult &r, const WorkloadBuild &wb)
{
    RunDump d;
    std::ostringstream os;
    sys.dumpStatsJson(os, true);
    d.json = os.str();
    d.insts = r.insts;
    d.cycles = r.cycles;
    d.ok = wl::readResult(sys.memory(), wb.program) == wb.expected;
    return d;
}

/** Straight-through reference run. */
RunDump
straightThrough(const SystemConfig &cfg, const WorkloadBuild &wb)
{
    System sys(cfg);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    return dumpOf(sys, r, wb);
}

/**
 * Run until @p snapAt instructions retire, snapshot from the step
 * hook, abandon that System (the "crash"), restore into a fresh one
 * and run it to completion.
 */
RunDump
killAndResume(const SystemConfig &cfg, const WorkloadBuild &wb,
              uint64_t snapAt)
{
    std::vector<uint8_t> bytes;
    {
        System sys(cfg);
        sys.loadProgram(wb.program);
        sys.stepHook = [&](uint64_t n, System &s) {
            if (bytes.empty() && n >= snapAt)
                bytes = snap::saveSnapshotBytes(s, n);
        };
        sys.run();
    }
    EXPECT_FALSE(bytes.empty()) << "snapshot point never reached";

    System sys(cfg);
    sys.loadProgram(wb.program);
    snap::restoreSnapshotBytes(sys, bytes.data(), bytes.size());
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::Halted);
    return dumpOf(sys, r, wb);
}

} // namespace

TEST(Resume, BitwiseIdenticalStatsAfterRestore)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;

    RunDump ref = straightThrough(cfg, wb);
    ASSERT_TRUE(ref.ok);

    for (uint64_t snapAt : {1000u, 2500u}) {
        RunDump res = killAndResume(cfg, wb, snapAt);
        EXPECT_TRUE(res.ok) << "snap at " << snapAt;
        EXPECT_EQ(res.insts, ref.insts) << "snap at " << snapAt;
        EXPECT_EQ(res.cycles, ref.cycles) << "snap at " << snapAt;
        EXPECT_EQ(res.json, ref.json) << "snap at " << snapAt;
    }
}

TEST(Resume, MultiCoreBitwiseIdentical)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    cfg.numCores = 2;

    RunDump ref = straightThrough(cfg, wb);
    RunDump res = killAndResume(cfg, wb, 1500);
    EXPECT_EQ(res.insts, ref.insts);
    EXPECT_EQ(res.cycles, ref.cycles);
    EXPECT_EQ(res.json, ref.json);
}

TEST(Resume, DifferLockstepOnGeneratedPrograms)
{
    for (uint64_t seed : {11u, 47u}) {
        check::GenConfig gc;
        gc.seed = seed;
        gc.numItems = 24;
        check::GenProgram prog = check::generate(gc);
        check::DiffResult r = check::checkSnapshotResume(prog, 500);
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.what;
    }
}

} // namespace xt910
