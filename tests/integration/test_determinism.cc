/**
 * Determinism suite: the run farm must be invisible in every
 * deterministic output. A System run produces byte-identical stats
 * JSON whether it executes alone or concurrently with seven copies on
 * the farm, and that JSON passes the strict validator — host timing
 * lives only in RunResult::hostSeconds, never in the stats dump.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/parallel.h"
#include "core/system.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{

namespace
{

struct RunDump
{
    std::string json;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    bool ok = false;
};

RunDump
runAndDump(const SystemConfig &cfg, const WorkloadBuild &wb)
{
    System sys(cfg);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    RunDump d;
    std::ostringstream os;
    sys.dumpStatsJson(os, true);
    d.json = os.str();
    d.insts = r.insts;
    d.cycles = r.cycles;
    d.ok = wl::readResult(sys.memory(), wb.program) == wb.expected;
    return d;
}

} // namespace

TEST(Determinism, StatsJsonIdenticalAcrossTheFarm)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;

    RunDump serial = runAndDump(cfg, wb);
    EXPECT_TRUE(serial.ok);
    std::string err;
    ASSERT_TRUE(json::validate(serial.json, &err)) << err;

    // Eight copies racing on the farm: every dump must equal the
    // serial one byte for byte.
    std::vector<RunDump> farm(8);
    parallelFor(farm.size(), 8,
                [&](size_t i) { farm[i] = runAndDump(cfg, wb); });
    for (size_t i = 0; i < farm.size(); ++i) {
        EXPECT_EQ(farm[i].insts, serial.insts) << "copy " << i;
        EXPECT_EQ(farm[i].cycles, serial.cycles) << "copy " << i;
        EXPECT_TRUE(farm[i].ok) << "copy " << i;
        EXPECT_EQ(farm[i].json, serial.json) << "copy " << i;
    }
}

TEST(Determinism, BlockCacheInvisibleInStatsJson)
{
    // The decode fast path must not leak into any deterministic
    // output: same cycles, same stats JSON with the cache on and off.
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("state").build(o);
    SystemConfig on;
    on.iss.blockCache = true;
    SystemConfig off = on;
    off.iss.blockCache = false;

    RunDump a = runAndDump(on, wb);
    RunDump b = runAndDump(off, wb);
    EXPECT_TRUE(a.ok);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.json, b.json);
}

} // namespace xt910
