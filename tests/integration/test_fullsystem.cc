/**
 * Full-system integration tests: workloads through ISS + timing model
 * together, determinism, monotonicity properties of the timing model,
 * paged-mode end-to-end runs and interrupt-driven programs on the
 * timing system.
 */

#include <gtest/gtest.h>

#include "baseline/presets.h"
#include "core/system.h"
#include "func/clint.h"
#include "func/csr.h"
#include "mmu/pagetable.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{

using namespace reg;

namespace
{

uint64_t
runOnSystem(const Workload &w, SystemConfig cfg,
            const WorkloadOptions &o, bool *correct = nullptr)
{
    WorkloadBuild wb = w.build(o);
    System sys(cfg);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    if (correct)
        *correct = wl::readResult(sys.memory(), wb.program) == wb.expected;
    return r.cycles;
}

} // namespace

TEST(FullSystem, EverySuiteValidatesOnTimingModel)
{
    // The timing model must not perturb architectural results: every
    // workload's checksum must hold when run through System.
    WorkloadOptions o;
    o.streamBytes = 64 * 1024;
    SystemConfig cfg = xt910Preset().config;
    for (const Workload &w : allWorkloads()) {
        bool correct = false;
        uint64_t cycles = runOnSystem(w, cfg, o, &correct);
        EXPECT_TRUE(correct) << w.name;
        EXPECT_GT(cycles, 0u) << w.name;
    }
}

TEST(FullSystem, DeterministicCycles)
{
    WorkloadOptions o;
    SystemConfig cfg = xt910Preset().config;
    const Workload &w = findWorkload("matrix");
    uint64_t c1 = runOnSystem(w, cfg, o);
    uint64_t c2 = runOnSystem(w, cfg, o);
    EXPECT_EQ(c1, c2);
}

TEST(FullSystem, HigherDramLatencyNeverFaster)
{
    WorkloadOptions o;
    o.streamBytes = 128 * 1024;
    const Workload &w = findWorkload("stream_add");
    SystemConfig fast = xt910Preset().config;
    fast.mem.dram.latency = 60;
    SystemConfig slow = fast;
    slow.mem.dram.latency = 300;
    EXPECT_LE(runOnSystem(w, fast, o), runOnSystem(w, slow, o));
}

TEST(FullSystem, BiggerL2NeverSlowerOnSpecMix)
{
    WorkloadOptions o;
    const Workload &w = findWorkload("spec_mix");
    SystemConfig small = xt910Preset().config;
    small.mem.l2.sizeBytes = 256 * 1024;
    SystemConfig big = xt910Preset().config;
    big.mem.l2.sizeBytes = 8 * 1024 * 1024;
    uint64_t cs = runOnSystem(w, small, o);
    uint64_t cb = runOnSystem(w, big, o);
    EXPECT_LE(cb, cs + cs / 50); // allow 2% noise
}

TEST(FullSystem, WiderMachineNeverSlowerOnCoremark)
{
    WorkloadOptions o;
    SystemConfig narrow = xt910Preset().config;
    narrow.core.decodeWidth = 2;
    narrow.core.renameWidth = 2;
    narrow.core.issueWidth = 4;
    SystemConfig wide = xt910Preset().config;
    for (const Workload &w : workloadsInSuite("coremark")) {
        uint64_t cn = runOnSystem(w, narrow, o);
        uint64_t cw = runOnSystem(w, wide, o);
        EXPECT_LE(cw, cn + cn / 50) << w.name;
    }
}

TEST(FullSystem, PagedRunMatchesBareArchitecturally)
{
    // Same workload under Bare and Paged translation: identical
    // architectural result, paged never faster.
    const Workload &w = findWorkload("crc");
    WorkloadOptions o;
    WorkloadBuild wb = w.build(o);

    SystemConfig bare = xt910Preset().config;
    System sb(bare);
    sb.loadProgram(wb.program);
    RunResult rb = sb.run();
    EXPECT_EQ(wl::readResult(sb.memory(), wb.program), wb.expected);

    SystemConfig paged = xt910Preset().config;
    paged.core.translation = TranslationMode::Paged;
    paged.core.pageTableRoot = 0xc0000000;
    System sp(paged);
    PageTableBuilder ptb(sp.memory(), 0xc0000000);
    Addr root = ptb.createRoot();
    ptb.identityMap(root, wb.program.base, 0x100000, PageSize::Page2M);
    sp.loadProgram(wb.program);
    RunResult rp = sp.run();
    EXPECT_EQ(wl::readResult(sp.memory(), wb.program), wb.expected);
    EXPECT_GE(rp.cycles, rb.cycles);
    EXPECT_GT(sp.core().ptwWalks.value(), 0u);
}

TEST(FullSystem, HugePagesBeatSmallPagesOnStream)
{
    // 2M pages need far fewer TLB entries/walks than 4K pages for the
    // same streaming footprint (§V.E huge-page motivation).
    WorkloadOptions o;
    o.streamBytes = 512 * 1024;
    WorkloadBuild wb = findWorkload("stream_copy").build(o);
    auto runPaged = [&](PageSize ps, uint64_t &walks) {
        SystemConfig cfg = xt910Preset().config;
        cfg.core.translation = TranslationMode::Paged;
        cfg.core.pageTableRoot = 0xc0000000;
        System sys(cfg);
        PageTableBuilder ptb(sys.memory(), 0xc0000000);
        Addr root = ptb.createRoot();
        ptb.identityMap(root, wb.program.base, 0x100000,
                        PageSize::Page4K);
        ptb.identityMap(root, 0x9000'0000, 4ull << 20, ps);
        sys.loadProgram(wb.program);
        RunResult r = sys.run();
        walks = sys.core().ptwWalks.value();
        return r.cycles;
    };
    uint64_t walks4k = 0, walks2m = 0;
    uint64_t c4k = runPaged(PageSize::Page4K, walks4k);
    uint64_t c2m = runPaged(PageSize::Page2M, walks2m);
    EXPECT_LT(walks2m, walks4k / 4);
    EXPECT_LE(c2m, c4k);
}

TEST(FullSystem, InterruptDrivenProgramOnTimingModel)
{
    // Timer-interrupt program runs through the full System (ISS +
    // timing): handler fires, program halts, timing stays sane.
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.ld(t1, t0, 0);
    a.addi(t1, t1, 300);
    a.sd(t1, t0, 0);
    a.li(t2, 2);
    a.blt(a2, t2, "resume");
    a.ebreak();
    a.label("resume");
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.li(t1, 120);
    a.sd(t1, t0, 0);
    a.li(t0, 1 << 7);
    a.csrw(csr::mie, t0);
    a.li(t0, 1 << 3);
    a.csrw(csr::mstatus, t0);
    a.label("spin");
    a.addi(a1, a1, 1);
    a.j("spin");

    System sys(SystemConfig{});
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_EQ(sys.iss().hart(0).x[12], 2u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.insts, 100u);
}

TEST(FullSystem, ContextSwitchFlushesLoopBuffer)
{
    SystemConfig cfg;
    System sys(cfg);
    Assembler a;
    a.li(s0, 100);
    a.label("loop");
    a.addi(a0, a0, 1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    sys.loadProgram(a.assemble());
    sys.run();
    EXPECT_GT(sys.core().loopBuffer().captures.value(), 0u);
    sys.core().contextSwitch(7, /*flushTlb=*/true);
    EXPECT_FALSE(sys.core().loopBuffer().capturing());
    EXPECT_GE(sys.core().loopBuffer().flushesCtr.value(), 1u);
    EXPECT_GE(sys.core().dtlbUnit().flushes.value(), 1u);
}

TEST(FullSystem, SixteenCoreRunWorks)
{
    // The paper's max configuration: 16 cores over 4 clusters.
    Assembler a;
    a.csrr(t0, csr::mhartid);
    a.la(a0, "slots");
    a.slli(t1, t0, 3);
    a.add(a0, a0, t1);
    a.addi(t2, t0, 1);
    a.sd(t2, a0, 0);
    a.ebreak();
    a.align(8);
    a.label("slots");
    a.zero(16 * 8);
    SystemConfig cfg;
    cfg.numCores = 16;
    System sys(cfg);
    Program p = a.assemble();
    sys.loadProgram(p);
    RunResult r = sys.run();
    EXPECT_EQ(r.coreCycles.size(), 16u);
    for (unsigned c = 0; c < 16; ++c)
        EXPECT_EQ(sys.memory().read(p.symbol("slots") + 8 * c, 8),
                  uint64_t(c + 1));
}

} // namespace xt910
