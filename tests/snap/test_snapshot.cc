/**
 * @file
 * Snapshot subsystem unit tests: the save → restore → save byte
 * round-trip (every serialized component must load exactly what it
 * wrote), header/section-table inspection, the config-hash contract
 * (run-length policy excluded, machine config included), and the
 * refusal paths — version mismatch, config mismatch, payload
 * corruption, and truncation at arbitrary byte boundaries must all
 * throw SnapError instead of applying garbage state.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/snapio.h"
#include "core/system.h"
#include "snap/snapshot.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{

namespace
{

/** Run @p wb for @p insts instructions and serialize the System. */
std::vector<uint8_t>
snapAfter(const SystemConfig &cfg, const WorkloadBuild &wb,
          uint64_t insts)
{
    SystemConfig bounded = cfg;
    bounded.maxInsts = insts;
    System sys(bounded);
    sys.loadProgram(wb.program);
    sys.run();
    return snap::saveSnapshotBytes(sys, insts);
}

} // namespace

TEST(Roundtrip, SaveRestoreSaveIsByteIdentical)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> a = snapAfter(cfg, wb, 3000);

    // Restore into a fresh System (same run-limit config so the
    // second save sees identical headers) and serialize again: any
    // field a component forgets to save, or loads into the wrong
    // place, breaks byte equality somewhere in its section.
    SystemConfig bounded = cfg;
    bounded.maxInsts = 3000;
    System sys(bounded);
    sys.loadProgram(wb.program);
    uint64_t insts = snap::restoreSnapshotBytes(sys, a.data(), a.size());
    EXPECT_EQ(insts, 3000u);
    std::vector<uint8_t> b = snap::saveSnapshotBytes(sys, insts);
    EXPECT_EQ(a, b);
}

TEST(Roundtrip, RestoreWorksWithoutLoadProgram)
{
    // Memory is replaced wholesale and every hart register comes from
    // the ISS section, so restore must not depend on loadProgram
    // having run first.
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> a = snapAfter(cfg, wb, 2000);

    SystemConfig bounded = cfg;
    bounded.maxInsts = 2000;
    System sys(bounded);
    uint64_t insts = snap::restoreSnapshotBytes(sys, a.data(), a.size());
    std::vector<uint8_t> b = snap::saveSnapshotBytes(sys, insts);
    EXPECT_EQ(a, b);
}

TEST(Roundtrip, MultiCoreSaveRestoreSave)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    cfg.numCores = 2;
    std::vector<uint8_t> a = snapAfter(cfg, wb, 2000);

    SystemConfig bounded = cfg;
    bounded.maxInsts = 2000;
    System sys(bounded);
    sys.loadProgram(wb.program);
    uint64_t insts = snap::restoreSnapshotBytes(sys, a.data(), a.size());
    std::vector<uint8_t> b = snap::saveSnapshotBytes(sys, insts);
    EXPECT_EQ(a, b);
}

TEST(Roundtrip, FunctionalOnlySnapshotRestoresColdTiming)
{
    // The sampled-simulation capture format: only MEMR + ISS are
    // serialized (the fast-forwarding System never touches its timing
    // side), and restore leaves every timing component at
    // construction state.
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;

    System ff(cfg);
    ff.loadProgram(wb.program);
    Iss &iss = ff.iss();
    for (int i = 0; i < 2000; ++i)
        iss.step(0);
    std::vector<uint8_t> fn =
        snap::saveSnapshotBytes(ff, 2000, /*functionalOnly=*/true);
    std::vector<uint8_t> full = snap::saveSnapshotBytes(ff, 2000);
    EXPECT_LT(fn.size(), full.size() / 4);

    snap::SnapshotInfo info = snap::inspectSnapshot(fn.data(), fn.size());
    ASSERT_EQ(info.sections.size(), 2u);
    EXPECT_EQ(info.sections[0].tag, "MEMR");
    EXPECT_EQ(info.sections[1].tag, "ISS ");

    System sys(cfg);
    uint64_t insts = snap::restoreSnapshotBytes(sys, fn.data(), fn.size());
    EXPECT_EQ(insts, 2000u);
    // Architectural state came across...
    EXPECT_EQ(sys.iss().hart(0).pc, iss.hart(0).pc);
    EXPECT_EQ(sys.iss().hart(0).instret, iss.hart(0).instret);
    // ...and the timing side is untouched construction state.
    EXPECT_EQ(sys.core(0).cycles(), 0u);
    EXPECT_EQ(sys.memSystem().l1d(0).misses.value(), 0u);
    // A functional-only snapshot must serialize back identically after
    // the restore (the architectural round-trip is exact).
    std::vector<uint8_t> again =
        snap::saveSnapshotBytes(sys, insts, /*functionalOnly=*/true);
    EXPECT_EQ(fn, again);
}

TEST(Inspect, HeaderAndSectionTable)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> bytes = snapAfter(cfg, wb, 2000);

    snap::SnapshotInfo info =
        snap::inspectSnapshot(bytes.data(), bytes.size());
    EXPECT_EQ(info.version, snap::formatVersion);
    EXPECT_EQ(info.instsRetired, 2000u);
    // maxInsts is run-length policy, excluded from the hash — the
    // header hash must match the *unbounded* config too.
    EXPECT_EQ(info.configHash, snap::configHash(cfg));

    ASSERT_EQ(info.sections.size(), 5u); // MEMR ISS MSYS CORE WDOG
    EXPECT_EQ(info.sections[0].tag, "MEMR");
    EXPECT_EQ(info.sections[1].tag, "ISS ");
    EXPECT_EQ(info.sections[2].tag, "MSYS");
    EXPECT_EQ(info.sections[3].tag, "CORE");
    EXPECT_EQ(info.sections[4].tag, "WDOG");
    for (const snap::SectionInfo &s : info.sections) {
        EXPECT_TRUE(s.checksumOk) << s.tag;
        EXPECT_GT(s.size, 0u) << s.tag;
    }
}

TEST(Inspect, ConfigHashContract)
{
    SystemConfig base;
    SystemConfig limits = base;
    limits.maxInsts = 12345;
    limits.maxCycles = 999;
    EXPECT_EQ(snap::configHash(base), snap::configHash(limits));

    SystemConfig smp = base;
    smp.numCores = 2;
    EXPECT_NE(snap::configHash(base), snap::configHash(smp));

    SystemConfig bigL2 = base;
    bigL2.mem.l2.sizeBytes *= 2;
    EXPECT_NE(snap::configHash(base), snap::configHash(bigL2));
}

TEST(Refuse, UnknownFormatVersion)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> bytes = snapAfter(cfg, wb, 1000);

    // formatVersion is the u32 straight after the 8-byte magic.
    bytes[8] = uint8_t(snap::formatVersion + 1);

    snap::SnapshotInfo info =
        snap::inspectSnapshot(bytes.data(), bytes.size());
    EXPECT_NE(info.version, snap::formatVersion);

    System sys(cfg);
    sys.loadProgram(wb.program);
    EXPECT_THROW(
        snap::restoreSnapshotBytes(sys, bytes.data(), bytes.size()),
        SnapError);
}

TEST(Refuse, ConfigHashMismatch)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> bytes = snapAfter(cfg, wb, 1000);

    SystemConfig other = cfg;
    other.mem.l2.sizeBytes *= 2;
    System sys(other);
    sys.loadProgram(wb.program);
    EXPECT_THROW(
        snap::restoreSnapshotBytes(sys, bytes.data(), bytes.size()),
        SnapError);
}

TEST(Refuse, CorruptPayload)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> bytes = snapAfter(cfg, wb, 1000);

    // Flip a byte inside the first section's payload: header is 32
    // bytes, the section header (tag + length) another 12, so offset
    // 54 sits well inside the MEMR payload.
    ASSERT_GT(bytes.size(), 64u);
    bytes[54] ^= 0xff;

    snap::SnapshotInfo info =
        snap::inspectSnapshot(bytes.data(), bytes.size());
    ASSERT_FALSE(info.sections.empty());
    EXPECT_FALSE(info.sections[0].checksumOk);

    System sys(cfg);
    sys.loadProgram(wb.program);
    EXPECT_THROW(
        snap::restoreSnapshotBytes(sys, bytes.data(), bytes.size()),
        SnapError);
}

TEST(Refuse, TruncationAtAnyBoundary)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> bytes = snapAfter(cfg, wb, 1000);

    // A fresh System per attempt: a refused restore may have partially
    // applied sections and the System is dead afterwards by contract.
    std::vector<size_t> cuts = {0,  7,  8,  20, 31, 32,
                                43, 44, 55, bytes.size() / 2,
                                bytes.size() - 1};
    for (size_t cut : cuts) {
        ASSERT_LT(cut, bytes.size());
        System sys(cfg);
        sys.loadProgram(wb.program);
        EXPECT_THROW(
            snap::restoreSnapshotBytes(sys, bytes.data(), cut),
            SnapError)
            << "truncated to " << cut << " bytes";
    }
}

TEST(Refuse, BadMagic)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    std::vector<uint8_t> bytes = snapAfter(cfg, wb, 1000);
    bytes[0] ^= 0x20;

    EXPECT_THROW(snap::inspectSnapshot(bytes.data(), bytes.size()),
                 SnapError);
    System sys(cfg);
    sys.loadProgram(wb.program);
    EXPECT_THROW(
        snap::restoreSnapshotBytes(sys, bytes.data(), bytes.size()),
        SnapError);
}

TEST(Files, AtomicWriteAndReadBack)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("list").build(o);
    SystemConfig cfg;
    cfg.maxInsts = 1500;
    System sys(cfg);
    sys.loadProgram(wb.program);
    sys.run();

    const std::string path = "test_snapshot_roundtrip.ckpt";
    snap::saveSnapshotFile(sys, path, 1500);
    snap::SnapshotInfo info = snap::inspectSnapshotFile(path);
    EXPECT_EQ(info.version, snap::formatVersion);
    EXPECT_EQ(info.instsRetired, 1500u);

    System fresh(cfg);
    fresh.loadProgram(wb.program);
    EXPECT_EQ(snap::restoreSnapshotFile(fresh, path), 1500u);
    std::remove(path.c_str());
}

} // namespace xt910
