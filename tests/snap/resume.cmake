# Checkpoint/restore determinism at the CLI level, run as a ctest
# script:
#
#   cmake -DXT910_RUN=... -DXT910_SNAP=... -DWORK_DIR=... -P resume.cmake
#
# Simulates a crashed run and its recovery end to end:
#  1. the workload runs straight through and dumps its stats JSON;
#  2. a second run checkpoints every 400 instructions and is cut down
#     by --max-insts mid-flight (exit 3), leaving its last mid-loop
#     checkpoint on disk — exactly the state a killed process leaves;
#  3. xt910-snap inspects the checkpoint (header prints, every section
#     checksum verifies, exit 0);
#  4. the run resumes with --restore and dumps its stats JSON, which
#     must equal the straight-through dump byte for byte;
#  5. a checkpoint with a corrupted payload is refused by --restore
#     (exit 2) and flagged CORRUPT by xt910-snap (exit 1).

if(NOT XT910_RUN OR NOT XT910_SNAP OR NOT WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DXT910_RUN=... -DXT910_SNAP=... -DWORK_DIR=... -P resume.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_expect rc_want out_var)
    execute_process(
        COMMAND ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL ${rc_want})
        message(FATAL_ERROR
            "${ARGN}: expected rc=${rc_want}, got rc=${rc}:\n${out}\n${err}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# ---- 1. straight-through reference -------------------------------------
run_expect(0 full_out "${XT910_RUN}" list
    --stats-json "${WORK_DIR}/full.json")

# ---- 2. checkpoint, then die on the instruction limit ------------------
run_expect(3 cut_out "${XT910_RUN}" list
    --checkpoint-every 400 --checkpoint-dir "${WORK_DIR}"
    --max-insts 1000)
if(NOT EXISTS "${WORK_DIR}/list.ckpt")
    message(FATAL_ERROR "no checkpoint written by --checkpoint-every")
endif()

# ---- 3. inspect: header + verified section table -----------------------
run_expect(0 insp_out "${XT910_SNAP}" "${WORK_DIR}/list.ckpt")
foreach(want IN ITEMS "format version : [0-9]+" "MEMR" "MSYS" "CORE" "WDOG")
    if(NOT insp_out MATCHES "${want}")
        message(FATAL_ERROR "xt910-snap output missing '${want}':\n${insp_out}")
    endif()
endforeach()
if(insp_out MATCHES "CORRUPT")
    message(FATAL_ERROR "fresh checkpoint reported corrupt:\n${insp_out}")
endif()

# ---- 4. resume and compare stats JSON byte for byte --------------------
run_expect(0 res_out "${XT910_RUN}" list
    --restore "${WORK_DIR}/list.ckpt"
    --stats-json "${WORK_DIR}/resumed.json")
file(READ "${WORK_DIR}/full.json" full_json)
file(READ "${WORK_DIR}/resumed.json" resumed_json)
if(NOT full_json STREQUAL resumed_json)
    message(FATAL_ERROR
        "resumed stats JSON differs from the straight-through run:\n--- full\n${full_json}\n--- resumed\n${resumed_json}")
endif()

# ---- 5. mismatches are refused, never reinterpreted --------------------
# Restoring into a machine with a different configuration (bigger L2)
# must be refused on the config hash (exit 2) ...
run_expect(2 mism_out "${XT910_RUN}" list
    --restore "${WORK_DIR}/list.ckpt" --l2-kib 4096)
# ... and a non-snapshot file must be rejected as malformed by both the
# inspector and --restore (byte-level corruption/truncation refusal is
# covered exhaustively by the test_snap unit tests).
run_expect(2 notsnap_out "${XT910_SNAP}" "${WORK_DIR}/full.json")
run_expect(2 notres_out "${XT910_RUN}" list
    --restore "${WORK_DIR}/full.json")

message(STATUS "resume determinism ok: checkpointed + resumed run matches straight-through byte for byte")
