# Hardened run-farm degradation, run as a ctest script:
#
#   cmake -DXT910_RUN=... -P farm_degrade.cmake
#
# One job's wall-clock overrun is injected via the --test-timeout hook
# (real timeouts need a slow host to reproduce; the hook makes the
# recovery path deterministic). Required behaviour: the other jobs run
# to completion and report normal rows, the timed-out job's row carries
# a TIMEOUT status cell, stderr names the job and its attempt count,
# and the driver exits 5 — partial results are salvaged, never thrown
# away because one worker died.

if(NOT XT910_RUN)
    message(FATAL_ERROR "usage: cmake -DXT910_RUN=... -P farm_degrade.cmake")
endif()

execute_process(
    COMMAND "${XT910_RUN}" --jobs 3 --retries 1 --test-timeout state
        list state matrix
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 5)
    message(FATAL_ERROR "expected exit 5 on a timed-out job, got rc=${rc}:\n${out}\n${err}")
endif()

# The healthy jobs completed with verified checksums and ok status.
foreach(w IN ITEMS list matrix)
    if(NOT out MATCHES "${w} +[0-9]+ +[0-9]+ +[0-9.]+ +[0-9.]+ +ok +ok")
        message(FATAL_ERROR "workload ${w} did not complete normally:\n${out}")
    endif()
endforeach()

# The injected job reports TIMEOUT in its status cell (zeroed row: it
# never produced a result) and is detailed on stderr with the retry
# count (1 retry => 2 attempts).
if(NOT out MATCHES "state .*TIMEOUT")
    message(FATAL_ERROR "timed-out job missing its TIMEOUT status:\n${out}")
endif()
if(NOT err MATCHES "job 'state' TIMEOUT after 2 attempt")
    message(FATAL_ERROR "stderr does not detail the failed job:\n${err}")
endif()

# Control: the same farm with no injection is fully green and exits 0.
execute_process(
    COMMAND "${XT910_RUN}" --jobs 3 list state matrix
    OUTPUT_VARIABLE out2
    ERROR_VARIABLE err2
    RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "clean farm run failed rc=${rc2}:\n${out2}\n${err2}")
endif()
if(NOT out2 MATCHES "state +[0-9]+ +[0-9]+ +[0-9.]+ +[0-9.]+ +ok +ok")
    message(FATAL_ERROR "clean farm run missing state row:\n${out2}")
endif()

message(STATUS "farm degradation ok: one injected timeout, others complete, exit 5")
