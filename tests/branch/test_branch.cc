/**
 * Branch-prediction unit tests (§III): direction predictor learning,
 * two-level buffer penalty knob, cascaded L0/L1 BTBs, RAS, indirect
 * predictor and the loop buffer.
 */

#include <gtest/gtest.h>

#include "branch/btb.h"
#include "branch/direction.h"
#include "branch/loopbuffer.h"
#include "common/random.h"

namespace xt910
{

TEST(Direction, LearnsAlwaysTaken)
{
    DirectionPredictor dp(DirectionParams{}, "bp");
    Addr pc = 0x80000010;
    for (int i = 0; i < 16; ++i)
        dp.update(pc, true);
    EXPECT_TRUE(dp.predict(pc));
    // After heavy not-taken training it flips.
    for (int i = 0; i < 16; ++i)
        dp.update(pc, false);
    EXPECT_FALSE(dp.predict(pc));
}

TEST(Direction, LearnsLoopExitPattern)
{
    // taken^9, not-taken, repeating: mispredict rate must drop well
    // below 50% once warmed up.
    DirectionPredictor dp(DirectionParams{}, "bp");
    Addr pc = 0x80000044;
    unsigned mispredicts = 0, total = 0;
    for (int iter = 0; iter < 400; ++iter) {
        for (int i = 0; i < 10; ++i) {
            bool taken = i != 9;
            if (iter >= 100) { // after warm-up
                ++total;
                if (dp.predict(pc) != taken)
                    ++mispredicts;
            }
            dp.update(pc, taken);
        }
    }
    EXPECT_LT(double(mispredicts) / double(total), 0.2);
}

TEST(Direction, DistinguishesManyBranches)
{
    DirectionPredictor dp(DirectionParams{}, "bp");
    // 64 branches with alternating fixed biases.
    for (int round = 0; round < 50; ++round)
        for (Addr b = 0; b < 64; ++b)
            dp.update(0x1000 + b * 8, (b & 1) != 0);
    unsigned wrong = 0;
    for (Addr b = 0; b < 64; ++b)
        if (dp.predict(0x1000 + b * 8) != ((b & 1) != 0))
            ++wrong;
    EXPECT_LE(wrong, 6u);
}

TEST(Direction, TwoLevelBufferRemovesPenalty)
{
    DirectionParams withBuf;
    DirectionParams without;
    without.twoLevelBuf = false;
    DirectionPredictor a(withBuf, "a"), b(without, "b");
    EXPECT_EQ(a.backToBackPenalty(), 0u);
    EXPECT_EQ(b.backToBackPenalty(), 1u);
}

TEST(Btb, L1LearnsTargets)
{
    Btb btb(BtbParams{}, "btb");
    EXPECT_FALSE(btb.lookupL1(0x2000, 0).has_value());
    btb.update(0x2000, 0x3000, BranchKind::Direct, false);
    auto hit = btb.lookupL1(0x2000, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->target, 0x3000u);
    EXPECT_FALSE(hit->fromL0);
}

TEST(Btb, L0PromotionGivesIfStageHit)
{
    Btb btb(BtbParams{}, "btb");
    btb.update(0x2000, 0x3000, BranchKind::Direct, /*promoteL0=*/false);
    EXPECT_FALSE(btb.lookupL0(0x2000, 0).has_value());
    btb.update(0x2000, 0x3000, BranchKind::Direct, /*promoteL0=*/true);
    auto hit = btb.lookupL0(0x2000, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->fromL0);
}

TEST(Btb, L0DisabledNeverHits)
{
    BtbParams p;
    p.l0Enabled = false;
    Btb btb(p, "btb");
    btb.update(0x2000, 0x3000, BranchKind::Direct, true);
    EXPECT_FALSE(btb.lookupL0(0x2000, 0).has_value());
    EXPECT_TRUE(btb.lookupL1(0x2000, 1).has_value());
}

TEST(Btb, L0CapacityIsSixteenFullyAssociative)
{
    Btb btb(BtbParams{}, "btb");
    // Fill 16 entries; all must hit regardless of address bits.
    for (Addr i = 0; i < 16; ++i)
        btb.update(0x4000 + i * 0x1234, 0x9000 + i, BranchKind::Direct,
                   true);
    for (Addr i = 0; i < 16; ++i)
        EXPECT_TRUE(btb.lookupL0(0x4000 + i * 0x1234, i).has_value());
    // A 17th evicts exactly one.
    btb.update(0xf0000, 0x1, BranchKind::Direct, true);
    unsigned hits = 0;
    for (Addr i = 0; i < 16; ++i)
        if (btb.lookupL0(0x4000 + i * 0x1234, 100 + i).has_value())
            ++hits;
    EXPECT_EQ(hits, 15u);
}

TEST(Btb, L1HoldsOverThousandEntries)
{
    Btb btb(BtbParams{}, "btb");
    for (Addr i = 0; i < 1024; ++i)
        btb.update(0x10000 + i * 2, i, BranchKind::Direct, false);
    unsigned hits = 0;
    for (Addr i = 0; i < 1024; ++i)
        if (btb.lookupL1(0x10000 + i * 2, i).has_value())
            ++hits;
    EXPECT_EQ(hits, 1024u); // >1K entries, set-associative (§III.B)
}

TEST(Ras, PredictsNestedReturns)
{
    ReturnAddressStack ras(16);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(4);
    for (Addr i = 1; i <= 6; ++i)
        ras.push(i * 0x10);
    // The newest 4 survive.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Indirect, LearnsPerPcTargets)
{
    IndirectPredictor ip(64);
    EXPECT_EQ(ip.predict(0x5000), 0u);
    ip.update(0x5000, 0x9000);
    // History changed after update; re-train until stable hit.
    ip.update(0x5000, 0x9000);
    Addr t = ip.predict(0x5000);
    // Either hits the right target or misses (history-hashed); never a
    // wrong-pc alias.
    if (t != 0)
        EXPECT_EQ(t, 0x9000u);
}

TEST(Lbuf, CapturesSmallLoopAfterTraining)
{
    LoopBuffer lb(LoopBufferParams{}, "lbuf");
    Addr branch = 0x1040, target = 0x1000; // 16 halfwords ~ 8-16 insts
    lb.observeBackwardBranch(branch, target, 10);
    EXPECT_FALSE(lb.capturing());
    lb.observeBackwardBranch(branch, target, 10);
    EXPECT_TRUE(lb.capturing());
    EXPECT_TRUE(lb.active(0x1000));
    EXPECT_TRUE(lb.active(0x1020));
    EXPECT_TRUE(lb.active(branch));
    EXPECT_FALSE(lb.active(0x1044));
    EXPECT_EQ(lb.captures.value(), 1u);
}

TEST(Lbuf, RejectsBodiesBiggerThanSixteen)
{
    LoopBuffer lb(LoopBufferParams{}, "lbuf");
    for (int i = 0; i < 5; ++i)
        lb.observeBackwardBranch(0x2100, 0x2000, 40);
    EXPECT_FALSE(lb.capturing());
}

TEST(Lbuf, FlushOnContextSwitch)
{
    LoopBuffer lb(LoopBufferParams{}, "lbuf");
    lb.observeBackwardBranch(0x1040, 0x1000, 8);
    lb.observeBackwardBranch(0x1040, 0x1000, 8);
    EXPECT_TRUE(lb.capturing());
    lb.flush();
    EXPECT_FALSE(lb.capturing());
    EXPECT_EQ(lb.flushesCtr.value(), 1u);
}

TEST(Lbuf, DisabledNeverCaptures)
{
    LoopBufferParams p;
    p.enabled = false;
    LoopBuffer lb(p, "lbuf");
    for (int i = 0; i < 10; ++i)
        lb.observeBackwardBranch(0x1040, 0x1000, 8);
    EXPECT_FALSE(lb.capturing());
}

} // namespace xt910
