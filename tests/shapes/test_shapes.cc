/**
 * Figure-shape regression tests: miniature versions of each paper
 * experiment asserting the qualitative result the benches report at
 * full scale — orderings, direction of effects and coarse factors.
 * These keep the headline reproductions from silently regressing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/presets.h"
#include "core/system.h"
#include "mmu/pagetable.h"
#include "power/ppa.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{

namespace
{

uint64_t
suiteCycles(const std::string &suite, const SystemConfig &cfg,
            const WorkloadOptions &o)
{
    uint64_t total = 0;
    for (const Workload &w : workloadsInSuite(suite)) {
        WorkloadBuild wb = w.build(o);
        System sys(cfg);
        sys.loadProgram(wb.program);
        total += sys.run().cycles;
        EXPECT_EQ(wl::readResult(sys.memory(), wb.program), wb.expected)
            << w.name;
    }
    return total;
}

uint64_t
kernelCycles(const char *name, const SystemConfig &cfg,
             const WorkloadOptions &o)
{
    WorkloadBuild wb = findWorkload(name).build(o);
    System sys(cfg);
    sys.loadProgram(wb.program);
    return sys.run().cycles;
}

} // namespace

TEST(Fig17Shape, CoremarkOrderingAcrossCores)
{
    WorkloadOptions o;
    uint64_t xt = suiteCycles("coremark", xt910Preset().config, o);
    uint64_t u74 = suiteCycles("coremark", u74Preset().config, o);
    uint64_t a73 = suiteCycles("coremark", a73Preset().config, o);
    uint64_t mcu = suiteCycles("coremark", mcuPreset().config, o);
    // Paper ordering: xt910 fastest, then A73-class, U74-class, MCU.
    EXPECT_LT(xt, a73);
    EXPECT_LT(a73, u74);
    EXPECT_LT(u74, mcu);
    // The headline: XT-910 is >= ~25% faster per MHz than U74-class
    // (paper: +40%).
    EXPECT_GT(double(u74) / double(xt), 1.25);
}

TEST(Fig18_19Shape, RoughlyOnParWithA73)
{
    WorkloadOptions o;
    for (const char *suite : {"eembc", "nbench"}) {
        uint64_t xt = suiteCycles(suite, xt910Preset().config, o);
        uint64_t a73 = suiteCycles(suite, a73Preset().config, o);
        double ratio = double(a73) / double(xt);
        EXPECT_GT(ratio, 0.9) << suite;  // not slower than ~0.9x A73
        EXPECT_LT(ratio, 1.6) << suite;  // "on par", not a blowout
    }
}

TEST(Fig20Shape, ExtensionsGiveDoubleDigitGain)
{
    WorkloadOptions native, ext;
    ext.extended = true;
    double product = 1.0;
    int count = 0;
    for (const char *k : {"matrix", "crc", "iirflt", "mac_scalar",
                          "huffman", "pntrch"}) {
        uint64_t cn = kernelCycles(k, xt910Preset().config, native);
        uint64_t ce = kernelCycles(k, xt910Preset().config, ext);
        product *= double(cn) / double(ce);
        ++count;
    }
    double geomean = std::pow(product, 1.0 / count);
    EXPECT_GT(geomean, 1.10); // paper: ~1.20x overall
    EXPECT_LT(geomean, 1.80);
}

TEST(Fig21Shape, PrefetchScenarioOrdering)
{
    // Miniature Fig. 21: stream_copy only, 256 KiB arrays.
    constexpr Addr tableBase = 0xc000'0000;
    WorkloadOptions o;
    o.streamBytes = 256 * 1024;
    WorkloadBuild wb = findWorkload("stream_copy").build(o);
    auto scenario = [&](bool l1, bool l2, bool tlb, unsigned dist,
                        unsigned depth) {
        SystemConfig cfg = xt910Preset().config;
        cfg.mem.l2.sizeBytes = 512 * 1024;
        cfg.core.prefetch.enableL1 = l1;
        cfg.core.prefetch.enableL2 = l2;
        cfg.core.prefetch.enableTlb = tlb;
        cfg.core.tlbPrefetch = tlb;
        cfg.core.prefetch.distance = dist;
        cfg.core.prefetch.maxDepth = depth;
        cfg.core.translation = TranslationMode::Paged;
        cfg.core.pageTableRoot = tableBase;
        System sys(cfg);
        PageTableBuilder ptb(sys.memory(), tableBase);
        Addr root = ptb.createRoot();
        ptb.identityMap(root, wb.program.base, 0x40000,
                        PageSize::Page4K);
        ptb.identityMap(root, 0x9000'0000, 4ull << 20, PageSize::Page4K);
        sys.loadProgram(wb.program);
        return sys.run().cycles;
    };
    uint64_t a = scenario(false, false, false, 0, 0);
    uint64_t b = scenario(true, false, false, 4, 8);
    uint64_t d = scenario(true, true, true, 24, 48);
    uint64_t e = scenario(true, true, false, 24, 48);
    EXPECT_GT(double(a) / double(b), 1.5);  // b >> a
    EXPECT_LT(d, b);                        // deeper+TLB helps more
    EXPECT_LE(d, e);                        // e slightly worse than d
    EXPECT_LT(double(e) / double(d), 1.15); // ... but only slightly
}

TEST(VectorMacShape, VectorBeatsScalarAndNeon)
{
    WorkloadOptions o;
    uint64_t scalar = kernelCycles("mac_scalar", xt910Preset().config, o);
    uint64_t vec = kernelCycles("mac_vector", xt910Preset().config, o);
    uint64_t neon = kernelCycles("mac_vector", a73Preset().config, o);
    EXPECT_GT(double(scalar) / double(vec), 3.0); // big vector win
    // XT-910's 256b/cycle datapath vs the NEON-like 128b (paper: 2x).
    EXPECT_GT(double(neon) / double(vec), 1.3);
    EXPECT_LT(double(neon) / double(vec), 2.5);
}

TEST(TableIIShape, PpaStaysCalibrated)
{
    MemSystemParams mem;
    mem.l1i.sizeBytes = mem.l1d.sizeBytes = 64 * 1024;
    mem.l2.sizeBytes = 512 * 1024;
    PpaResult r = estimatePpa(CoreParams{}, mem);
    EXPECT_NEAR(r.coreAreaMm2, 0.8, 0.1);
    EXPECT_NEAR(r.freqGHz, 2.0, 0.15);
}

TEST(SpecShape, LargeFootprintRoughParity)
{
    WorkloadOptions o;
    uint64_t xt = kernelCycles("spec_mix", xt910Preset().config, o);
    uint64_t a73 = kernelCycles("spec_mix", a73Preset().config, o);
    double ratio = double(a73) / double(xt);
    // Paper: XT-910 ~10% behind; model lands within +-15% of parity.
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.25);
}

} // namespace xt910
