/**
 * Precise synchronous-exception tests: illegal instructions, access
 * faults with exact mtval, misalignment, ecall delivery, mstatus
 * stacking across trap entry / mret, nested traps, and the
 * silicon-errata regressions (the GhostWrite-style reserved vector
 * store encoding must trap and never touch memory).
 */

#include <gtest/gtest.h>

#include "func/csr.h"
#include "func/iss.h"
#include "func/trap.h"

namespace xt910
{

using namespace reg;

namespace
{

/** An encoding no XT-910 decode table accepts (all-ones, 32-bit). */
constexpr uint32_t illegalWord = 0xffffffffu;

/**
 * GhostWrite-style reserved encoding: a unit-strided e8 vector store
 * (vs3 = v0, rs1 = t0) with the reserved mew bit (bit 28) set. The
 * silicon erratum in the XuanTie C9xx line let such encodings bypass
 * checks and write physical memory; the model must decode it as
 * illegal and never perform the store.
 */
constexpr uint32_t ghostWriteWord = 0x12028027u;

/** Handler that copies mcause/mtval/mepc to a2/a3/a4 and halts. */
void
recordingHandler(Assembler &a)
{
    a.label("handler");
    a.csrr(a2, csr::mcause);
    a.csrr(a3, csr::mtval);
    a.csrr(a4, csr::mepc);
    a.ebreak();
}

} // namespace

TEST(Traps, IllegalInstructionRecordsPreciseCsrs)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.label("bad");
    a.word(illegalWord);
    a.ebreak(); // skipped: the handler halts first

    Memory mem;
    Iss iss(mem);
    Program p = a.assemble();
    iss.loadProgram(p);
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::illegalInstruction);
    EXPECT_EQ(iss.hart(0).x[13], illegalWord); // mtval = encoding
    EXPECT_EQ(iss.hart(0).x[14], p.symbol("bad"));
    EXPECT_EQ(iss.trapsTaken(), 1u);
}

TEST(Traps, HandlerSkipsIllegalAndResumes)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);      // count traps
    a.csrr(t0, csr::mepc);
    a.addi(t0, t0, 4);
    a.csrw(csr::mepc, t0);  // skip the 4-byte illegal word
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(a1, 7);
    a.word(illegalWord);
    a.addi(a1, a1, 10);     // must execute after the handler skips
    a.ebreak();

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[11], 17u);
    EXPECT_EQ(iss.hart(0).x[12], 1u);
}

TEST(Traps, GhostWriteErrataVectorStoreTrapsAndWritesNothing)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    // Configure a live vector state and point t0 (= the encoding's
    // rs1) at the victim buffer, exactly as the exploit would.
    a.li(a0, 16);
    a.vsetvli(t1, a0, VType{.sew = 8, .lmul = 1});
    a.vmv_v_i(v0, -1);
    a.la(t0, "victim");
    a.word(ghostWriteWord);
    a.ebreak(); // skipped: the handler halts first
    a.align(8);
    a.label("victim");
    a.dword(0x1122334455667788ull);
    a.dword(0x99aabbccddeeff00ull);

    Memory mem;
    Iss iss(mem);
    Program p = a.assemble();
    iss.loadProgram(p);
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    // The reserved encoding is an illegal instruction...
    EXPECT_EQ(iss.hart(0).x[12], trap::illegalInstruction);
    EXPECT_EQ(iss.hart(0).x[13], ghostWriteWord);
    // ...and the store never reached memory.
    EXPECT_EQ(mem.read(p.symbol("victim"), 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(p.symbol("victim") + 8, 8),
              0x99aabbccddeeff00ull);
}

TEST(Traps, LoadAccessFaultHasPreciseMtval)
{
    constexpr uint64_t badAddr = 1ull << 41; // beyond the 1 TiB limit
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t1, int64_t(badAddr));
    a.ld(a5, t1, 0);
    a.ebreak();

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::loadAccessFault);
    EXPECT_EQ(iss.hart(0).x[13], badAddr);
    EXPECT_EQ(iss.hart(0).x[15], 0u); // rd was never written
}

TEST(Traps, StoreAccessFaultIntoFaultRange)
{
    constexpr uint64_t hole = 0x4000'0000;
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t1, int64_t(hole + 0x10));
    a.li(t2, 0xdead);
    a.sd(t2, t1, 0);
    a.ebreak();

    Memory mem;
    mem.addFaultRange(hole, 0x1000);
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::storeAccessFault);
    EXPECT_EQ(iss.hart(0).x[13], hole + 0x10);
    EXPECT_EQ(mem.read(hole + 0x10, 8), 0u); // store suppressed
}

TEST(Traps, InstructionAccessFaultOnBadFetch)
{
    constexpr uint64_t hole = 0x5000'0000;
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t1, int64_t(hole));
    a.jr(t1);

    Memory mem;
    mem.addFaultRange(hole, 0x1000);
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::instAccessFault);
    EXPECT_EQ(iss.hart(0).x[13], hole);
    EXPECT_EQ(iss.hart(0).x[14], hole); // mepc = faulting pc
}

TEST(Traps, VectorStoreFaultsPreciselyWithVstart)
{
    // Element 8 of a unit-strided e8 store lands in the fault hole;
    // elements 0..7 must be architecturally visible, vstart must name
    // the faulting element.
    constexpr uint64_t hole = 0x6000'0000;
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(a0, 16);
    a.vsetvli(t1, a0, VType{.sew = 8, .lmul = 1});
    a.vmv_v_i(v1, 5);
    a.li(t2, int64_t(hole - 8)); // elements 0..7 legal, 8.. in hole
    a.vse(v1, t2);
    a.ebreak();

    Memory mem;
    mem.addFaultRange(hole, 0x1000);
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::storeAccessFault);
    EXPECT_EQ(iss.hart(0).x[13], hole);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(mem.read(hole - 8 + i, 1), 5u) << i;
    auto it = iss.hart(0).csrs.find(csr::vstart);
    ASSERT_NE(it, iss.hart(0).csrs.end());
    EXPECT_EQ(it->second, 8u);
}

TEST(Traps, MstatusStacksAcrossTrapAndMret)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.csrr(a2, csr::mstatus); // observed inside the handler
    a.csrr(t0, csr::mepc);
    a.addi(t0, t0, 4);
    a.csrw(csr::mepc, t0);
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t0, 1 << 3); // mstatus.MIE
    a.csrw(csr::mstatus, t0);
    a.word(illegalWord);
    a.csrr(a3, csr::mstatus); // observed after mret
    a.ebreak();

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    uint64_t inside = iss.hart(0).x[12];
    uint64_t after = iss.hart(0).x[13];
    EXPECT_EQ(inside & 0x8, 0u);          // MIE cleared on entry
    EXPECT_EQ(inside & 0x80, 0x80u);      // MPIE = old MIE
    EXPECT_EQ(inside & 0x1800, 0x1800u);  // MPP = Machine
    EXPECT_EQ(after & 0x8, 0x8u);         // mret restored MIE
    EXPECT_EQ(after & 0x1800, 0u);        // MPP cleared by mret
}

TEST(Traps, NestedTrapInsideHandler)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("inner");
    a.csrr(a3, csr::mcause);
    a.ebreak();
    a.align(4); // mtvec bases are 4-byte aligned (low bits = mode)
    a.label("outer");
    a.csrr(a2, csr::mcause);
    a.la(t0, "inner");
    a.csrw(csr::mtvec, t0); // re-arm before faulting again
    a.word(illegalWord);
    a.label("_start");
    a.la(t0, "outer");
    a.csrw(csr::mtvec, t0);
    a.word(illegalWord);

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::illegalInstruction);
    EXPECT_EQ(iss.hart(0).x[13], trap::illegalInstruction);
    EXPECT_EQ(iss.trapsTaken(), 2u);
}

TEST(Traps, UnknownEcallTrapsButHostSyscallsStillWork)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.csrr(a2, csr::mcause);
    a.csrr(t0, csr::mepc);
    a.addi(t0, t0, 4);
    a.csrw(csr::mepc, t0);
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(a7, 555);   // not a host syscall: traps (ecall from M = 11)
    a.ecall();
    a.li(a7, 93);    // host exit syscall keeps working
    a.li(a0, 7);
    a.ecall();

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.exitCode(), 7);
    EXPECT_EQ(iss.hart(0).x[12], trap::ecallFromM);
    EXPECT_EQ(iss.trapsTaken(), 1u);
}

TEST(Traps, StrictAlignRaisesMisaligned)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.la(t1, "data");
    a.addi(t1, t1, 1);
    a.lh(a5, t1, 0); // 2-byte load at odd address
    a.ebreak();
    a.align(8);
    a.label("data");
    a.dword(0);

    Memory mem;
    IssOptions o;
    o.strictAlign = true;
    Iss iss(mem, 1, o);
    Program p = a.assemble();
    iss.loadProgram(p);
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], trap::loadAddrMisaligned);
    EXPECT_EQ(iss.hart(0).x[13], p.symbol("data") + 1);
}

TEST(Traps, DefaultAlignmentIsHandledInHardware)
{
    // XT-910's LSU supports misaligned accesses: by default they
    // complete without a trap.
    Assembler a;
    a.la(t1, "data");
    a.li(t2, 0x1bcd); // positive so sign-extending lh returns it as-is
    a.sh(t2, t1, 1);
    a.lh(a1, t1, 1);
    a.ebreak();
    a.align(8);
    a.label("data");
    a.dword(0);

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[11], 0x1bcdu);
    EXPECT_EQ(iss.trapsTaken(), 0u);
}

TEST(Traps, UnhandledTrapHaltsHartWhenNotFatal)
{
    Assembler a;
    a.word(illegalWord); // no mtvec installed

    Memory mem;
    IssOptions o;
    o.fatalOnUnhandledTrap = false;
    Iss iss(mem, 1, o);
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_TRUE(iss.hart(0).fatalTrap);
    EXPECT_EQ(iss.exitCode(), 128 + int(trap::illegalInstruction));
    EXPECT_EQ(iss.trapsTaken(), 0u); // never reached a handler
}

TEST(Traps, InjectedAccessFaultIsRecoverable)
{
    // The acceptance scenario: a guest with a trap handler survives an
    // injected access fault on a perfectly legal load, counts it, and
    // still computes the right result.
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);
    a.csrr(t0, csr::mepc);
    a.addi(t0, t0, 4);
    a.csrw(csr::mepc, t0);
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.la(t1, "data");
    a.ld(a1, t1, 0); // the injected fault hits this load
    a.ld(a1, t1, 0); // the retry succeeds
    a.ebreak();
    a.align(8);
    a.label("data");
    a.dword(42);

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.injectAccessFault();
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[11], 42u); // retried load succeeded
    EXPECT_EQ(iss.hart(0).x[12], 1u);  // exactly one fault observed
    EXPECT_EQ(iss.trapsTaken(), 1u);
}

TEST(Traps, TrapRecordDrivesTimingFlush)
{
    // The ExecRecord for a trapping instruction carries the trap and
    // redirects nextPc to the handler.
    Assembler a;
    a.j("_start");
    a.align(4);
    recordingHandler(a);
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.word(illegalWord);

    Memory mem;
    Iss iss(mem);
    Program p = a.assemble();
    iss.loadProgram(p);
    ExecRecord rec;
    for (int i = 0; i < 100 && !iss.halted(); ++i) {
        rec = iss.step();
        if (rec.trap.valid)
            break;
    }
    ASSERT_TRUE(rec.trap.valid);
    EXPECT_EQ(rec.trap.cause, trap::illegalInstruction);
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(rec.nextPc, p.symbol("handler"));
}

} // namespace xt910
