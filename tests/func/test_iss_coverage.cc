/**
 * Extended ISS coverage: single-precision FP, converts and classifies,
 * the full AMO matrix, CSR set/clear semantics, fence.i with
 * self-modifying code, word-width shift/arith edge cases, and the
 * compressed-form execution of common ops.
 */

#include <gtest/gtest.h>

#include <limits>

#include "func/csr.h"
#include "func/iss.h"

namespace xt910
{

using namespace reg;

namespace
{

struct R
{
    Memory mem;
    std::unique_ptr<Iss> iss;
    Program prog;
};

R
run(Assembler &a)
{
    R r;
    r.prog = a.assemble();
    r.iss = std::make_unique<Iss>(r.mem);
    r.iss->loadProgram(r.prog);
    r.iss->run(1'000'000);
    EXPECT_TRUE(r.iss->halted());
    return r;
}

} // namespace

TEST(IssCoverage, SinglePrecisionArithmetic)
{
    Assembler a;
    a.li(t0, 6);
    a.fcvt_d_l(fa0, t0);
    a.fcvt_s_d(fa0, fa0);    // 6.0f
    a.li(t0, 4);
    a.fcvt_d_l(fa1, t0);
    a.fcvt_s_d(fa1, fa1);    // 4.0f
    a.fadd_s(fa2, fa0, fa1); // 10
    a.fsub_s(fa3, fa0, fa1); // 2
    a.fmul_s(fa4, fa0, fa1); // 24
    a.fdiv_s(fa5, fa0, fa1); // 1.5
    a.fmadd_s(fa6, fa0, fa1, fa2); // 34
    // Convert each back through double to integers x1000.
    a.fcvt_d_s(ft0, fa5);
    a.la(t1, "k1000");
    a.fld(ft1, t1, 0);
    a.fmul_d(ft0, ft0, ft1);
    a.fcvt_l_d(a1, ft0);     // 1500
    a.fcvt_d_s(ft0, fa6);
    a.fcvt_l_d(a2, ft0);     // 34
    a.ebreak();
    a.align(8);
    a.label("k1000");
    a.dword(std::bit_cast<uint64_t>(1000.0));
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[11], 1500u);
    EXPECT_EQ(r.iss->hart(0).x[12], 34u);
}

TEST(IssCoverage, FpCompareAndSignInjectSingle)
{
    Assembler a;
    a.li(t0, -3);
    a.fcvt_d_l(fa0, t0);
    a.fcvt_s_d(fa0, fa0);     // -3.0f
    a.li(t0, 3);
    a.fcvt_d_l(fa1, t0);
    a.fcvt_s_d(fa1, fa1);     // 3.0f
    {
        DecodedInst di;
        di.op = Opcode::FLT_S;
        di.rd = 11; // a1
        di.rdClass = RegClass::Int;
        di.rs1 = 10;
        di.rs2 = 11;
        di.rs1Class = di.rs2Class = RegClass::Fp;
        a.emit(di); // flt.s a1, fa0, fa1 -> 1
    }
    {
        DecodedInst di;
        di.op = Opcode::FSGNJX_S;
        di.rd = 12;
        di.rs1 = 10;
        di.rs2 = 10;
        di.rdClass = di.rs1Class = di.rs2Class = RegClass::Fp;
        a.emit(di); // fabs-ish via sign xor with itself -> +3.0
    }
    a.fcvt_d_s(ft0, fa2);
    a.fcvt_l_d(a2, ft0);
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[11], 1u);
    EXPECT_EQ(r.iss->hart(0).x[12], 3u);
}

TEST(IssCoverage, AmoWordMatrix)
{
    Assembler a;
    a.la(s1, "cell");
    auto reload = [&](int32_t v) {
        a.li(t0, v);
        a.sw(t0, s1, 0);
    };
    reload(10);
    a.li(t1, 3);
    a.amoadd_w(a0, t1, s1); // old 10, mem 13
    a.amoswap_w(a1, t1, s1); // old 13, mem 3
    {
        // amoxor.w / amoand.w / amoor.w / amomin/max/u via emit
        auto amo = [&](Opcode op, XReg rd, int32_t src) {
            a.li(t1, src);
            DecodedInst di;
            di.op = op;
            di.rd = rd.idx;
            di.rs1 = s1.idx;
            di.rs2 = t1.idx;
            di.rdClass = di.rs1Class = di.rs2Class = RegClass::Int;
            a.emit(di);
        };
        amo(Opcode::AMOXOR_W, a2, 0xff);   // old 3, mem 0xfc
        amo(Opcode::AMOAND_W, a3, 0x0f);   // old 0xfc, mem 0x0c
        amo(Opcode::AMOOR_W, a4, 0x30);    // old 0x0c, mem 0x3c
        amo(Opcode::AMOMIN_W, a5, -5);     // old 0x3c, mem -5
        amo(Opcode::AMOMAX_W, a6, 100);    // old -5, mem 100
        amo(Opcode::AMOMINU_W, a7, 50);    // old 100, mem 50
        amo(Opcode::AMOMAXU_W, t2, 0x7fffffff); // old 50, mem max
    }
    a.lw(t3, s1, 0);
    a.ebreak();
    a.align(8);
    a.label("cell");
    a.zero(8);
    auto r = run(a);
    auto &x = r.iss->hart(0).x;
    EXPECT_EQ(x[10], 10u);
    EXPECT_EQ(x[11], 13u);
    EXPECT_EQ(x[12], 3u);
    EXPECT_EQ(x[13], 0xfcu);
    EXPECT_EQ(x[14], 0x0cu);
    EXPECT_EQ(x[15], 0x3cu);
    EXPECT_EQ(int64_t(x[16]), -5);
    EXPECT_EQ(x[17], 100u);
    EXPECT_EQ(x[7], 50u);
    EXPECT_EQ(x[28], 0x7fffffffu);
}

TEST(IssCoverage, CsrSetClearBits)
{
    Assembler a;
    a.li(t0, 0xf0);
    a.csrw(0x340, t0);      // mscratch = 0xf0
    a.li(t1, 0x0f);
    a.csrrs(a0, 0x340, t1); // old 0xf0, now 0xff
    a.csrrc(a1, 0x340, t1); // old 0xff, now 0xf0
    a.csrrwi(a2, 0x340, 5); // old 0xf0, now 5
    a.csrr(a3, 0x340);
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 0xf0u);
    EXPECT_EQ(r.iss->hart(0).x[11], 0xffu);
    EXPECT_EQ(r.iss->hart(0).x[12], 0xf0u);
    EXPECT_EQ(r.iss->hart(0).x[13], 5u);
}

TEST(IssCoverage, FenceIFlushesDecodeCacheForSelfModifyingCode)
{
    // A tiny function whose addi immediate is patched between calls
    // (compression off so the patch targets a full 32-bit I-type).
    Assembler a(defaultCodeBase, {.compress = false});
    a.j("_start");
    a.align(4);
    a.label("patchme");
    {
        // Emit uncompressed so the patch targets a full I-type word.
        DecodedInst di;
        di.op = Opcode::ADDI;
        di.rd = di.rs1 = 10; // a0 += 1
        di.rdClass = di.rs1Class = RegClass::Int;
        di.imm = 1;
        a.emit(di);
    }
    a.ret();
    a.label("_start");
    a.la(s1, "patchme");
    a.jalr(ra, s1);         // a0 += 1
    // Patch the immediate field (bits 31:20) to 2.
    a.lwu(t0, s1, 0);
    a.li(t1, 0xfff);
    a.slli(t1, t1, 20);
    a.not_(t1, t1);
    a.and_(t0, t0, t1);
    a.li(t1, 2);
    a.slli(t1, t1, 20);
    a.or_(t0, t0, t1);
    a.sw(t0, s1, 0);
    a.fence_i();
    a.jalr(ra, s1);         // a0 += 2 (patched)
    a.ebreak();
    Program p = a.assemble();
    Memory mem;
    Iss iss(mem);
    iss.loadProgram(p);
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[10], 3u);
}

TEST(IssCoverage, WordWidthEdgeCases)
{
    Assembler a;
    a.li(t0, int64_t(0xffffffff80000000ull)); // INT32_MIN sext
    a.addiw(a0, t0, -1);   // wraps to INT32_MAX
    a.li(t1, 1);
    a.sllw(a1, t1, t0);    // shift amount = low 5 bits of t0 = 0
    a.li(t2, 0x100000000ll);
    a.addw(a2, t2, t1);    // low 32 bits: 0 + 1
    a.srliw(a3, t0, 31);   // (0x80000000 >> 31) = 1
    a.sraiw(a4, t0, 31);   // sign -> -1
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(int64_t(r.iss->hart(0).x[10]), int64_t(INT32_MAX));
    EXPECT_EQ(r.iss->hart(0).x[11], 1u);
    EXPECT_EQ(r.iss->hart(0).x[12], 1u);
    EXPECT_EQ(r.iss->hart(0).x[13], 1u);
    EXPECT_EQ(int64_t(r.iss->hart(0).x[14]), -1);
}

TEST(IssCoverage, FclassRecognizesCategories)
{
    Assembler a;
    a.la(s1, "vals");
    a.fld(fa0, s1, 0); // +1.5
    a.fld(fa1, s1, 8); // -inf
    a.fld(fa2, s1, 16); // nan
    a.fld(fa3, s1, 24); // -0.0
    auto fclass = [&](XReg rd, FReg rs1) {
        DecodedInst di;
        di.op = Opcode::FCLASS_D;
        di.rd = rd.idx;
        di.rdClass = RegClass::Int;
        di.rs1 = rs1.idx;
        di.rs1Class = RegClass::Fp;
        a.emit(di);
    };
    fclass(a0, fa0);
    fclass(a1, fa1);
    fclass(a2, fa2);
    fclass(a3, fa3);
    a.ebreak();
    a.align(8);
    a.label("vals");
    a.dword(std::bit_cast<uint64_t>(1.5));
    a.dword(std::bit_cast<uint64_t>(
        -std::numeric_limits<double>::infinity()));
    a.dword(std::bit_cast<uint64_t>(
        std::numeric_limits<double>::quiet_NaN()));
    a.dword(std::bit_cast<uint64_t>(-0.0));
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 1u << 6); // positive normal
    EXPECT_EQ(r.iss->hart(0).x[11], 1u << 0); // -inf
    EXPECT_EQ(r.iss->hart(0).x[12], 1u << 9); // quiet NaN
    EXPECT_EQ(r.iss->hart(0).x[13], 1u << 3); // -0
}

TEST(IssCoverage, MulhsuMixedSigns)
{
    Assembler a;
    a.li(a0, -1);          // signed -1
    a.li(a1, 2);           // unsigned 2
    a.mulhsu(a2, a0, a1);  // (-1 * 2) >> 64 = -1
    a.li(a3, 1ll << 62);
    a.li(a4, 4);
    a.mulhsu(a5, a3, a4);  // 2^64 >> 64 = 1
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(int64_t(r.iss->hart(0).x[12]), -1);
    EXPECT_EQ(r.iss->hart(0).x[15], 1u);
}

} // namespace xt910
