/**
 * Predecoded basic-block cache tests: hit/miss accounting, coherence
 * with self-modifying code (with and without fence.i), and exact
 * architectural equivalence with the legacy per-PC decode path.
 */

#include <gtest/gtest.h>

#include "func/iss.h"

namespace xt910
{

using namespace reg;

namespace
{

/** Run @p a to completion on a fresh ISS; returns the ISS by value
 *  semantics via out-params the tests care about. */
struct BcRun
{
    Memory mem;
    IssOptions opts;
    Iss iss;

    explicit BcRun(const Program &p, bool blockCache = true)
        : opts(makeOpts(blockCache)), iss(mem, 1, opts)
    {
        iss.loadProgram(p);
    }

    static IssOptions
    makeOpts(bool blockCache)
    {
        IssOptions o;
        o.blockCache = blockCache;
        return o;
    }
};

/** addi a0, a0, imm (12-bit imm), the raw word SMC tests store. */
uint32_t
addiA0(int imm)
{
    return (uint32_t(imm & 0xfff) << 20) | (10u << 15) | (10u << 7) |
           0x13;
}

} // namespace

TEST(BlockCache, HitMissAccounting)
{
    Assembler a;
    a.li(s0, 1000);
    a.label("loop");
    a.addi(a0, a0, 1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();

    BcRun r(a.assemble());
    uint64_t insts = r.iss.run();
    EXPECT_TRUE(r.iss.halted());
    EXPECT_EQ(r.iss.hart(0).x[10], 1000u);

    const BlockCacheStats &bc = r.iss.blockCacheStats();
    // Every retired instruction was served by the cache, exactly once.
    EXPECT_EQ(bc.hits + bc.misses, insts);
    // The loop body decodes once and replays from the cache.
    EXPECT_GT(bc.hits, 10 * bc.misses);
    EXPECT_EQ(bc.invalidations, 0u);
    EXPECT_GE(r.iss.blockCacheSize(), 1u);
}

TEST(BlockCache, SelfModifyingCodeWithoutFence)
{
    // The patched instruction lives in an already-executed, cached
    // block; the ISS must re-decode after the store even without a
    // fence.i (stores into predecoded ranges flush the cache).
    Assembler a;
    a.li(a0, 0);
    a.li(s0, 2);
    a.la(t0, "patch");
    a.li(t1, int64_t(addiA0(2)));
    a.label("loop");
    a.label("patch");
    a.addi(a0, a0, 1); // becomes addi a0, a0, 2 after the first pass
    a.sw(t1, t0, 0);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();

    BcRun r(a.assemble());
    r.iss.run();
    EXPECT_TRUE(r.iss.halted());
    // Pass 1 adds 1, pass 2 must see the patched +2. A stale decode
    // would leave a0 == 2.
    EXPECT_EQ(r.iss.hart(0).x[10], 3u);
    EXPECT_GT(r.iss.blockCacheStats().invalidations, 0u);
    EXPECT_GT(r.iss.blockCacheStats().flushes, 0u);
}

TEST(BlockCache, FenceIFlushes)
{
    Assembler a;
    a.li(a0, 7);
    a.fence_i();
    a.addi(a0, a0, 1);
    a.ebreak();

    BcRun r(a.assemble());
    uint64_t flushesBefore = r.iss.blockCacheStats().flushes;
    r.iss.run();
    EXPECT_TRUE(r.iss.halted());
    EXPECT_EQ(r.iss.hart(0).x[10], 8u);
    EXPECT_GT(r.iss.blockCacheStats().flushes, flushesBefore);
}

TEST(BlockCache, MatchesLegacyDecodePath)
{
    // A branchy, storing loop: the two decode paths must retire the
    // same instructions and end in the same architectural state.
    Assembler a;
    a.li(s0, 300);
    a.li(a0, 0);
    a.la(s1, "buf");
    a.label("loop");
    a.andi(t0, s0, 1);
    a.beqz(t0, "even");
    a.addi(a0, a0, 3);
    a.j("next");
    a.label("even");
    a.addi(a0, a0, 5);
    a.label("next");
    a.sd(a0, s1, 0);
    a.ld(t1, s1, 0);
    a.add(a1, a1, t1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("buf");
    a.zero(8);

    Program p = a.assemble();
    BcRun fast(p, true);
    BcRun legacy(p, false);
    uint64_t instsFast = fast.iss.run();
    uint64_t instsLegacy = legacy.iss.run();
    EXPECT_TRUE(fast.iss.halted());
    EXPECT_TRUE(legacy.iss.halted());
    EXPECT_EQ(instsFast, instsLegacy);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(fast.iss.hart(0).x[i], legacy.iss.hart(0).x[i])
            << "x" << i;
    // The legacy path never touches the block cache.
    EXPECT_EQ(legacy.iss.blockCacheStats().hits, 0u);
    EXPECT_EQ(legacy.iss.blockCacheSize(), 0u);
}

TEST(BlockCache, InjectedCodeWriteInvalidates)
{
    // notifyCodeWrite is the fault-injector path: a bit flip in an
    // already-decoded instruction must be re-fetched, not replayed
    // from the cache.
    Assembler a;
    a.li(s0, 2);
    a.li(a0, 0);
    a.label("loop");
    a.label("patch");
    a.word(addiA0(1)); // uncompressed encoding, so the 4-byte patch
                       // below can't clip a neighbouring RVC inst
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();

    Program p = a.assemble();
    BcRun r(p);
    Addr patch = p.symbol("patch");
    // Execute up to the second arrival at the patched instruction
    // (i.e. one full loop pass, so the block is cached and replayed).
    while (r.iss.hart(0).pc != patch)
        r.iss.step();
    r.iss.step();
    while (r.iss.hart(0).pc != patch)
        r.iss.step();
    ASSERT_FALSE(r.iss.halted());
    // Rewrite the immediate from 1 to 3 behind the ISS's back, as
    // FaultInjector does.
    r.mem.write(patch, 4, addiA0(3));
    r.iss.notifyCodeWrite(patch, 4);
    r.iss.run();
    EXPECT_TRUE(r.iss.halted());
    EXPECT_EQ(r.iss.hart(0).x[10], 1u + 3u);
    EXPECT_GT(r.iss.blockCacheStats().invalidations, 0u);
}

} // namespace xt910
