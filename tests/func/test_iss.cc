/**
 * Functional-simulator tests: whole small programs assembled with the
 * macro-assembler and executed to completion, checking architectural
 * results.
 */

#include <gtest/gtest.h>

#include "common/snapio.h"
#include "func/csr.h"
#include "func/iss.h"
#include "workloads/workload.h"

namespace xt910
{

using namespace reg;

namespace
{

/** Assemble, run to halt, and return the final state of hart 0. */
struct RunResult
{
    Memory mem;
    uint64_t insts;
    std::array<uint64_t, 32> x;
    std::array<uint64_t, 32> f;
    int exitCode;
    std::string console;
};

RunResult
runProgram(Assembler &a, unsigned vlen = 128)
{
    Program p = a.assemble();
    RunResult r;
    IssOptions opts;
    opts.vlenBits = vlen;
    Iss iss(r.mem, 1, opts);
    iss.loadProgram(p);
    r.insts = iss.run(10'000'000);
    EXPECT_TRUE(iss.halted()) << "program did not halt";
    r.x = iss.hart(0).x;
    r.f = iss.hart(0).f;
    r.exitCode = iss.exitCode();
    r.console = iss.console();
    return r;
}

} // namespace

TEST(Iss, ArithmeticBasics)
{
    Assembler a;
    a.li(a0, 5);
    a.li(a1, 7);
    a.add(a2, a0, a1);
    a.sub(a3, a0, a1);
    a.mul(a4, a0, a1);
    a.slli(a5, a0, 4);
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[12], 12u);
    EXPECT_EQ(int64_t(r.x[13]), -2);
    EXPECT_EQ(r.x[14], 35u);
    EXPECT_EQ(r.x[15], 80u);
}

TEST(Iss, LoopSum)
{
    // sum 1..100 == 5050
    Assembler a;
    a.li(a0, 0);
    a.li(a1, 1);
    a.li(a2, 100);
    a.label("loop");
    a.add(a0, a0, a1);
    a.addi(a1, a1, 1);
    a.bge(a2, a1, "loop");
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[10], 5050u);
}

TEST(Iss, MemoryLoadsStores)
{
    Assembler a;
    a.la(a0, "buf");
    a.li(a1, -2);
    a.sw(a1, a0, 0);
    a.lw(a2, a0, 0);   // sign-extended
    a.lwu(a3, a0, 0);  // zero-extended
    a.lb(a4, a0, 0);
    a.lbu(a5, a0, 0);
    a.li(t0, 0x1234);
    a.sh(t0, a0, 8);
    a.lhu(t1, a0, 8);
    a.ebreak();
    a.align(8);
    a.label("buf");
    a.zero(16);
    auto r = runProgram(a);
    EXPECT_EQ(int64_t(r.x[12]), -2);
    EXPECT_EQ(r.x[13], 0xfffffffeu);
    EXPECT_EQ(int64_t(r.x[14]), -2);
    EXPECT_EQ(r.x[15], 0xfeu);
    EXPECT_EQ(r.x[6], 0x1234u);
}

TEST(Iss, DivisionEdgeCases)
{
    Assembler a;
    a.li(a0, 7);
    a.li(a1, 0);
    a.div(a2, a0, a1);  // div by zero -> -1
    a.rem(a3, a0, a1);  // rem by zero -> dividend
    a.li(a4, INT64_MIN);
    a.li(a5, -1);
    a.div(a6, a4, a5);  // overflow -> dividend
    a.rem(a7, a4, a5);  // overflow -> 0
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(int64_t(r.x[12]), -1);
    EXPECT_EQ(int64_t(r.x[13]), 7);
    EXPECT_EQ(int64_t(r.x[16]), INT64_MIN);
    EXPECT_EQ(int64_t(r.x[17]), 0);
}

TEST(Iss, MulhVariants)
{
    Assembler a;
    a.li(a0, -1);
    a.li(a1, -1);
    a.mulh(a2, a0, a1);   // (-1 * -1) >> 64 == 0
    a.mulhu(a3, a0, a1);  // huge
    a.li(a4, 1ll << 40);
    a.li(a5, 1ll << 40);
    a.mulh(a6, a4, a5);   // 2^80 >> 64 == 2^16
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[12], 0u);
    EXPECT_EQ(r.x[13], ~0ull - 1);
    EXPECT_EQ(r.x[16], 1ull << 16);
}

TEST(Iss, CallReturnStack)
{
    // double(x): x*2 via a function call.
    Assembler a;
    a.li(a0, 21);
    a.call("dbl");
    a.ebreak();
    a.label("dbl");
    a.add(a0, a0, a0);
    a.ret();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[10], 42u);
}

TEST(Iss, ExitSyscallAndConsole)
{
    Assembler a;
    // print 'h','i' then exit(3)
    a.li(a7, 64);
    a.li(a0, 'h');
    a.ecall();
    a.li(a0, 'i');
    a.ecall();
    a.li(a7, 93);
    a.li(a0, 3);
    a.ecall();
    auto r = runProgram(a);
    EXPECT_EQ(r.console, "hi");
    EXPECT_EQ(r.exitCode, 3);
}

TEST(Iss, CsrInstretAndHartid)
{
    Assembler a;
    a.nop();
    a.nop();
    a.csrr(a0, csr::instret);
    a.csrr(a1, csr::mhartid);
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[10], 2u); // two nops retired before the csrr
    EXPECT_EQ(r.x[11], 0u);
}

TEST(Iss, FloatingPointDouble)
{
    Assembler a;
    a.la(a0, "vals");
    a.fld(fa0, a0, 0);
    a.fld(fa1, a0, 8);
    a.fadd_d(fa2, fa0, fa1);
    a.fmul_d(fa3, fa0, fa1);
    a.fdiv_d(fa4, fa1, fa0);
    a.fmadd_d(fa5, fa0, fa1, fa2);
    a.fcvt_l_d(a1, fa3);
    a.flt_d(a2, fa0, fa1);
    a.ebreak();
    a.align(8);
    a.label("vals");
    a.dword(std::bit_cast<uint64_t>(2.5));
    a.dword(std::bit_cast<uint64_t>(4.0));
    auto r = runProgram(a);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.f[12]), 6.5);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.f[13]), 10.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.f[14]), 1.6);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.f[15]), 16.5);
    EXPECT_EQ(r.x[11], 10u);
    EXPECT_EQ(r.x[12], 1u);
}

TEST(Iss, FloatingPointSingleAndConvert)
{
    Assembler a;
    a.li(a0, 9);
    a.fcvt_d_l(fa0, a0);
    a.fsqrt_d(fa1, fa0);
    a.fcvt_l_d(a1, fa1);
    a.fcvt_s_d(fa2, fa0);
    a.fadd_s(fa3, fa2, fa2);
    a.fcvt_d_s(fa4, fa3);
    a.fcvt_l_d(a2, fa4);
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[11], 3u);
    EXPECT_EQ(r.x[12], 18u);
}

TEST(Iss, AmoAndLrSc)
{
    Assembler a;
    a.la(a0, "cell");
    a.li(a1, 10);
    a.amoadd_d(a2, a1, a0);  // old = 5, mem = 15
    a.ld(a3, a0, 0);
    a.lr_d(a4, a0);
    a.li(a5, 99);
    a.sc_d(a6, a5, a0);      // succeeds -> 0
    a.ld(a7, a0, 0);
    a.sc_d(t0, a5, a0);      // no reservation -> 1
    a.ebreak();
    a.align(8);
    a.label("cell");
    a.dword(5);
    auto r = runProgram(a);
    EXPECT_EQ(r.x[12], 5u);
    EXPECT_EQ(r.x[13], 15u);
    EXPECT_EQ(r.x[14], 15u);
    EXPECT_EQ(r.x[16], 0u);
    EXPECT_EQ(r.x[17], 99u);
    EXPECT_EQ(r.x[5], 1u);
}

TEST(Iss, MultiHartAmoCounter)
{
    // Four harts each add 1000 to a shared counter with amoadd.
    Assembler a;
    a.la(a0, "counter");
    a.li(a1, 1000);
    a.li(a2, 1);
    a.label("loop");
    a.amoadd_d(zero, a2, a0);
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    a.align(8);
    a.label("counter");
    a.dword(0);
    Program p = a.assemble();

    Memory mem;
    Iss iss(mem, 4);
    iss.loadProgram(p);
    iss.run(100'000'000);
    EXPECT_TRUE(iss.allHalted());
    EXPECT_EQ(mem.read(p.symbol("counter"), 8), 4000u);
}

TEST(Iss, MultiHartSpinlock)
{
    // Two harts increment a non-atomic counter under an LR/SC lock.
    Assembler a;
    a.la(t0, "lock");
    a.la(t1, "counter");
    a.li(s1, 500);
    a.label("again");
    // acquire
    a.label("acq");
    a.lr_d(t2, t0);
    a.bnez(t2, "acq");
    a.li(t3, 1);
    a.sc_d(t4, t3, t0);
    a.bnez(t4, "acq");
    // critical section
    a.ld(t5, t1, 0);
    a.addi(t5, t5, 1);
    a.sd(t5, t1, 0);
    // release
    a.sd(zero, t0, 0);
    a.addi(s1, s1, -1);
    a.bnez(s1, "again");
    a.ebreak();
    a.align(8);
    a.label("lock");
    a.dword(0);
    a.label("counter");
    a.dword(0);
    Program p = a.assemble();

    Memory mem;
    Iss iss(mem, 2);
    iss.loadProgram(p);
    iss.run(100'000'000);
    EXPECT_TRUE(iss.allHalted());
    EXPECT_EQ(mem.read(p.symbol("counter"), 8), 1000u);
}

TEST(Iss, CompressedAndFullCodeAgree)
{
    auto runWith = [&](bool compress) {
        Assembler a(defaultCodeBase, {.compress = compress});
        a.li(a0, 0);
        a.li(a1, 37);
        a.label("l");
        a.addi(a0, a0, 3);
        a.addi(a1, a1, -1);
        a.bnez(a1, "l");
        a.ebreak();
        return runProgram(a).x[10];
    };
    EXPECT_EQ(runWith(true), runWith(false));
    EXPECT_EQ(runWith(true), 111u);
}

TEST(Iss, ExecRecordCarriesBranchOutcome)
{
    Assembler a;
    a.li(a0, 1);
    a.beqz(a0, "skip"); // not taken
    a.li(a1, 5);
    a.label("skip");
    a.j("end");         // taken
    a.nop();
    a.label("end");
    a.ebreak();
    Program p = a.assemble();
    Memory mem;
    Iss iss(mem);
    iss.loadProgram(p);
    std::vector<ExecRecord> recs;
    while (!iss.halted())
        recs.push_back(iss.step());
    bool sawNotTaken = false, sawTaken = false;
    for (auto &r : recs) {
        if (r.di.isBranch() && !r.taken)
            sawNotTaken = true;
        if (r.di.op == Opcode::JAL) {
            EXPECT_TRUE(r.taken);
            EXPECT_EQ(r.nextPc, p.symbol("end"));
            sawTaken = true;
        }
    }
    EXPECT_TRUE(sawNotTaken);
    EXPECT_TRUE(sawTaken);
}

TEST(Iss, ExecRecordCarriesMemAddr)
{
    Assembler a;
    a.la(a0, "buf");
    a.li(a1, 0x42);
    a.sd(a1, a0, 8);
    a.ld(a2, a0, 8);
    a.ebreak();
    a.align(8);
    a.label("buf");
    a.zero(16);
    Program p = a.assemble();
    Memory mem;
    Iss iss(mem);
    iss.loadProgram(p);
    Addr buf = p.symbol("buf");
    bool sawStore = false, sawLoad = false;
    while (!iss.halted()) {
        ExecRecord r = iss.step();
        if (r.di.op == Opcode::SD) {
            EXPECT_EQ(r.memAddr, buf + 8);
            EXPECT_EQ(r.memSize, 8u);
            sawStore = true;
        }
        if (r.di.op == Opcode::LD) {
            EXPECT_EQ(r.memAddr, buf + 8);
            sawLoad = true;
        }
    }
    EXPECT_TRUE(sawStore && sawLoad);
}

// runFast is a mirror of step()'s block path and must stay
// architecturally bit-identical to stepping: drive a real workload
// (branches, memory traffic, CSRs, the exit ecall) down both paths —
// including uneven chunk sizes that split basic blocks — and compare
// the complete serialized architectural state.
TEST(Iss, RunFastMatchesStepBitExactly)
{
    WorkloadOptions wo;
    WorkloadBuild wb = findWorkload("crc").build(wo);

    auto finalState = [&](auto &&advance) {
        Memory mem;
        Iss iss(mem);
        iss.loadProgram(wb.program);
        uint64_t n = advance(iss);
        SnapWriter w;
        iss.snapSave(w);
        return std::make_pair(n, w.take());
    };

    auto [nStep, stateStep] = finalState([](Iss &iss) {
        uint64_t n = 0;
        while (!iss.halted(0) && n < 2'000'000) {
            iss.step(0);
            ++n;
        }
        return n;
    });
    EXPECT_LT(nStep, 2'000'000u) << "workload did not halt";

    auto [nFast, stateFast] = finalState([](Iss &iss) {
        uint64_t n = 0;
        // Deliberately awkward chunk sizes (1, 2, 4, ... then 8191)
        // so chunk boundaries land mid-block.
        uint64_t chunk = 1;
        while (!iss.halted(0) && n < 2'000'000) {
            n += iss.runFast(0, chunk);
            chunk = chunk < 4096 ? chunk * 2 : 8191;
        }
        return n;
    });

    EXPECT_EQ(nStep, nFast);
    EXPECT_EQ(stateStep, stateFast);

    // Interleaving the two paths mid-run must also be seamless.
    auto [nMix, stateMix] = finalState([](Iss &iss) {
        uint64_t n = 0;
        while (!iss.halted(0) && n < 2'000'000) {
            n += iss.runFast(0, 1000);
            for (int i = 0; i < 17 && !iss.halted(0); ++i) {
                iss.step(0);
                ++n;
            }
        }
        return n;
    });
    EXPECT_EQ(nStep, nMix);
    EXPECT_EQ(stateStep, stateMix);
}

} // namespace xt910
