/**
 * XT-910 custom ("xthead") extension functional tests covering §VIII:
 * indexed memory accesses, unsigned address generation, bit
 * manipulation and MAC instructions.
 */

#include <gtest/gtest.h>

#include "func/iss.h"

namespace xt910
{

using namespace reg;

namespace
{

struct R
{
    Memory mem;
    std::unique_ptr<Iss> iss;
    Program prog;
};

R
run(Assembler &a, bool enableCustom = true)
{
    R r;
    r.prog = a.assemble();
    IssOptions opts;
    opts.enableCustom = enableCustom;
    r.iss = std::make_unique<Iss>(r.mem, 1, opts);
    r.iss->loadProgram(r.prog);
    r.iss->run(1'000'000);
    return r;
}

} // namespace

TEST(IssCustom, IndexedLoadStore)
{
    Assembler a;
    a.la(s0, "arr");
    a.li(s1, 3);                 // index
    a.xt_lrw(a0, s0, s1, 2);     // a0 = arr[3] (shift 2 = int32 index)
    a.li(a1, 999);
    a.xt_srw(a1, s0, s1, 2);     // arr[3] = 999
    a.xt_lrw(a2, s0, s1, 2);
    a.ebreak();
    a.align(4);
    a.label("arr");
    for (int i = 0; i < 8; ++i)
        a.word(uint32_t(10 * i));
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 30u);
    EXPECT_EQ(r.iss->hart(0).x[12], 999u);
}

TEST(IssCustom, UnsignedIndexExtension)
{
    // A 32-bit index with the sign bit set: xt.lurd must zero-extend
    // it rather than sign-extend (the §VIII.A motivation).
    Assembler a;
    a.la(s0, "cell");
    // Place a sign-bit-set value in the low 32 bits of the index reg.
    a.li(s1, int64_t(0xffffffff80000000ull) | 8); // garbage upper bits
    a.li(t1, int64_t(0x80000000ull) + 8);
    a.sub(t2, s0, t1);      // base = cell - zext32(index)
    a.xt_lurd(a0, t2, s1);  // should address exactly "cell"
    a.ebreak();
    a.align(8);
    a.label("cell");
    a.dword(0x5a5a5a5a5a5a5a5aull);
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 0x5a5a5a5a5a5a5a5aull);
}

TEST(IssCustom, AddSl)
{
    Assembler a;
    a.li(a0, 100);
    a.li(a1, 5);
    a.xt_addsl(a2, a0, a1, 3); // 100 + (5<<3) = 140
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[12], 140u);
}

TEST(IssCustom, BitFieldExtract)
{
    Assembler a;
    a.li(a0, int64_t(0xdeadbeefcafebabeull));
    a.xt_extu(a1, a0, 15, 8);   // 0xba
    a.xt_ext(a2, a0, 15, 8);    // sext(0xba, 8) = -70
    a.xt_extu(a3, a0, 63, 32);  // 0xdeadbeef
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[11], 0xbau);
    EXPECT_EQ(int64_t(r.iss->hart(0).x[12]), int64_t(int8_t(0xba)));
    EXPECT_EQ(r.iss->hart(0).x[13], 0xdeadbeefu);
}

TEST(IssCustom, FindFirstAndReverse)
{
    Assembler a;
    a.li(a0, 1);
    a.xt_ff1(a1, a0);          // 63 leading zeros
    a.li(a2, -1);
    a.xt_ff0(a3, a2);          // 64 leading ones
    a.li(a4, 0x0102030405060708ll);
    a.xt_rev(a5, a4);
    a.li(t0, 0x00ff120000340000ll);
    a.xt_tstnbz(t1, t0);
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[11], 63u);
    EXPECT_EQ(r.iss->hart(0).x[13], 64u);
    EXPECT_EQ(r.iss->hart(0).x[15], 0x0807060504030201ull);
    // Zero bytes of t0 are {0,1,3,4,7} -> 0xff in those result bytes.
    EXPECT_EQ(r.iss->hart(0).x[6], 0xff0000ffff00ffffull);
}

TEST(IssCustom, RotateRight)
{
    Assembler a;
    a.li(a0, 0x8000000000000001ull);
    a.xt_srri(a1, a0, 1);
    a.xt_srri(a2, a0, 0);
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[11], 0xc000000000000000ull);
    EXPECT_EQ(r.iss->hart(0).x[12], 0x8000000000000001ull);
}

TEST(IssCustom, MacInstructions)
{
    Assembler a;
    a.li(a0, 100);  // accumulator
    a.li(a1, 6);
    a.li(a2, 7);
    a.xt_mula(a0, a1, a2);  // 100 + 42 = 142
    a.xt_muls(a0, a1, a2);  // back to 100
    a.li(a3, 50);
    a.li(a4, 0xffff0005ll);  // low 16 bits = 5
    a.li(a5, 3);
    a.xt_mulah(a3, a4, a5);  // 50 + 5*3 = 65
    a.xt_mulsh(a3, a4, a5);  // back to 50
    a.xt_mulah(a3, a4, a5);
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 100u);
    EXPECT_EQ(r.iss->hart(0).x[13], 65u);
}

TEST(IssCustom, CacheOpsAreArchitecturallyInert)
{
    Assembler a;
    a.li(a0, 7);
    a.xt_dcache_call();
    a.xt_dcache_ciall();
    a.xt_icache_iall();
    a.xt_sync();
    a.xt_tlb_iall();
    a.xt_tlb_iasid(a0);
    a.xt_tlb_bcast(a0);
    a.addi(a0, a0, 1);
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 8u);
}

TEST(IssCustom, DisabledCustomModeRejects)
{
    // §II: through hardware configuration the non-standard extensions
    // can be disabled for a fully standard-compatible mode.
    Assembler a;
    a.xt_rev(a0, a0);
    a.ebreak();
    Program p = a.assemble();
    Memory mem;
    IssOptions opts;
    opts.enableCustom = false;
    Iss iss(mem, 1, opts);
    iss.loadProgram(p);
    EXPECT_THROW(iss.run(10), std::runtime_error);
}

} // namespace xt910
