/**
 * Vector-extension functional tests: configuration, loads/stores,
 * arithmetic, widening MAC (the paper's AI showcase, §VII/§X),
 * reductions, masking and half-precision.
 */

#include <gtest/gtest.h>

#include "func/fp16.h"
#include "func/iss.h"

namespace xt910
{

using namespace reg;

namespace
{

struct VecRun
{
    Memory mem;
    std::unique_ptr<Iss> iss;
    Program prog;
};

VecRun
run(Assembler &a, unsigned vlen = 128)
{
    VecRun r;
    r.prog = a.assemble();
    IssOptions opts;
    opts.vlenBits = vlen;
    r.iss = std::make_unique<Iss>(r.mem, 1, opts);
    r.iss->loadProgram(r.prog);
    r.iss->run(10'000'000);
    EXPECT_TRUE(r.iss->halted());
    return r;
}

} // namespace

TEST(IssVector, VsetvliClampsToVlmax)
{
    Assembler a;
    a.li(a0, 1000);
    a.vsetvli(t0, a0, VType{.sew = 32, .lmul = 1}); // VLMAX = 128/32 = 4
    a.li(a1, 2);
    a.vsetvli(t1, a1, VType{.sew = 32, .lmul = 1}); // below max -> 2
    a.vsetvli(t2, zero, VType{.sew = 8, .lmul = 1}); // x0 -> VLMAX = 16
    a.ebreak();
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[5], 4u);
    EXPECT_EQ(r.iss->hart(0).x[6], 2u);
    EXPECT_EQ(r.iss->hart(0).x[7], 16u);
}

TEST(IssVector, VectorAddLoop)
{
    // c[i] = a[i] + b[i] for 10 int32 elements, stripmined.
    Assembler a;
    a.la(s0, "va");
    a.la(s1, "vb");
    a.la(s2, "vc");
    a.li(s3, 10); // remaining
    a.label("loop");
    a.vsetvli(t0, s3, VType{.sew = 32, .lmul = 1});
    a.vle(v1, s0);
    a.vle(v2, s1);
    a.vadd_vv(v3, v1, v2);
    a.vse(v3, s2);
    a.slli(t1, t0, 2);
    a.add(s0, s0, t1);
    a.add(s1, s1, t1);
    a.add(s2, s2, t1);
    a.sub(s3, s3, t0);
    a.bnez(s3, "loop");
    a.ebreak();
    a.align(4);
    a.label("va");
    for (int i = 0; i < 10; ++i)
        a.word(uint32_t(i));
    a.label("vb");
    for (int i = 0; i < 10; ++i)
        a.word(uint32_t(100 * i));
    a.label("vc");
    a.zero(40);
    auto r = run(a);
    Addr vc = r.prog.symbol("vc");
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.mem.read(vc + 4 * i, 4), uint64_t(101 * i)) << i;
}

TEST(IssVector, WideningMac16Bit)
{
    // 16-bit MAC into 32-bit accumulators: the paper's headline AI
    // kernel shape (16x 16-bit MACs per cycle on XT-910).
    Assembler a;
    a.la(s0, "x");
    a.la(s1, "w");
    a.li(t0, 8);
    a.vsetvli(t0, t0, VType{.sew = 16, .lmul = 1});
    a.vle(v1, s0);
    a.vle(v2, s1);
    // acc (v4, sew=32) += x * w
    a.vmv_v_i(v4, 0);
    a.vmv_v_i(v5, 0);
    a.vwmacc_vv(v4, v1, v2);
    a.vwmacc_vv(v4, v1, v2); // accumulate twice
    a.ebreak();
    a.align(2);
    a.label("x");
    for (int i = 1; i <= 8; ++i)
        a.half(uint16_t(i));
    a.label("w");
    for (int i = 1; i <= 8; ++i)
        a.half(uint16_t(3));
    auto r = run(a);
    // v4/v5 hold 8 x int32 accumulators = 2 * 3*i
    const auto &v4 = r.iss->hart(0).v[4];
    for (int i = 0; i < 4; ++i) {
        int32_t acc;
        std::memcpy(&acc, v4.data() + 4 * i, 4);
        EXPECT_EQ(acc, 2 * 3 * (i + 1));
    }
    const auto &v5 = r.iss->hart(0).v[5];
    for (int i = 0; i < 4; ++i) {
        int32_t acc;
        std::memcpy(&acc, v5.data() + 4 * i, 4);
        EXPECT_EQ(acc, 2 * 3 * (i + 5));
    }
}

TEST(IssVector, ReductionSum)
{
    Assembler a;
    a.la(s0, "vals");
    a.li(t0, 4);
    a.vsetvli(t0, t0, VType{.sew = 64, .lmul = 2}); // group of 2 regs
    a.vle(v2, s0);
    a.vmv_v_i(v6, 0);
    a.vredsum_vs(v8, v2, v6);
    a.vmv_x_s(a0, v8);
    a.ebreak();
    a.align(8);
    a.label("vals");
    a.dword(10);
    a.dword(20);
    a.dword(30);
    a.dword(40);
    auto r = run(a);
    EXPECT_EQ(r.iss->hart(0).x[10], 100u);
}

TEST(IssVector, StridedLoadStore)
{
    // Gather every other int32 from a buffer, double it, scatter back.
    Assembler a;
    a.la(s0, "buf");
    a.li(t0, 4);
    a.vsetvli(t0, t0, VType{.sew = 32, .lmul = 1});
    a.li(t1, 8); // byte stride: every other element
    a.vlse(v1, s0, t1);
    a.vadd_vv(v2, v1, v1);
    a.vsse(v2, s0, t1);
    a.ebreak();
    a.align(4);
    a.label("buf");
    for (int i = 0; i < 8; ++i)
        a.word(uint32_t(i + 1));
    auto r = run(a);
    Addr buf = r.prog.symbol("buf");
    for (int i = 0; i < 8; ++i) {
        uint64_t expect = (i % 2 == 0) ? 2 * (i + 1) : i + 1;
        EXPECT_EQ(r.mem.read(buf + 4 * i, 4), expect) << i;
    }
}

TEST(IssVector, IndexedGather)
{
    Assembler a;
    a.la(s0, "table");
    a.la(s1, "idx");
    a.li(t0, 4);
    a.vsetvli(t0, t0, VType{.sew = 32, .lmul = 1});
    a.vle(v1, s1);           // byte offsets
    a.vlxe(v2, s0, v1);      // gather table[idx]
    a.vse(v2, s1);           // overwrite idx with gathered values
    a.ebreak();
    a.align(4);
    a.label("table");
    for (int i = 0; i < 8; ++i)
        a.word(uint32_t(100 + i));
    a.label("idx");
    a.word(4 * 3);
    a.word(4 * 0);
    a.word(4 * 7);
    a.word(4 * 1);
    auto r = run(a);
    Addr idx = r.prog.symbol("idx");
    EXPECT_EQ(r.mem.read(idx + 0, 4), 103u);
    EXPECT_EQ(r.mem.read(idx + 4, 4), 100u);
    EXPECT_EQ(r.mem.read(idx + 8, 4), 107u);
    EXPECT_EQ(r.mem.read(idx + 12, 4), 101u);
}

TEST(IssVector, MaskedAdd)
{
    Assembler a;
    a.li(t0, 4);
    a.vsetvli(t0, t0, VType{.sew = 32, .lmul = 1});
    a.vmv_v_i(v1, 5);
    a.vmv_v_i(v2, 3);
    // v0 mask = 0b0101 -> elements 0 and 2 active.
    a.li(t1, 0b0101);
    a.vmv_s_x(v0, t1);
    a.vmv_v_i(v3, 0);
    {
        // masked vadd: only elements 0 and 2 are written.
        DecodedInst di;
        di.op = Opcode::VADD_VV;
        di.rd = 3;
        di.rs1 = 1;
        di.rs2 = 2;
        di.rdClass = di.rs1Class = di.rs2Class = RegClass::Vec;
        di.vm = false;
        a.emit(di);
    }
    a.ebreak();
    auto r = run(a);
    const auto &v3 = r.iss->hart(0).v[3];
    int32_t e[4];
    std::memcpy(e, v3.data(), 16);
    EXPECT_EQ(e[0], 8);
    EXPECT_EQ(e[1], 0);
    EXPECT_EQ(e[2], 8);
    EXPECT_EQ(e[3], 0);
}

TEST(IssVector, FpDoubleVectorMac)
{
    Assembler a;
    a.la(s0, "x");
    a.li(t0, 2);
    a.vsetvli(t0, t0, VType{.sew = 64, .lmul = 1});
    a.vle(v1, s0);
    a.vmv_v_i(v2, 0);
    a.li(t1, 3);
    a.fcvt_d_l(fa0, t1);
    a.vfmv_v_f(v3, fa0);       // splat 3.0
    a.vfmacc_vv(v2, v1, v3);   // v2 += v1 * 3.0
    a.vfredsum_vs(v4, v2, v2); // careless acc: v4[0] = v2[0] + sum(v2)
    a.ebreak();
    a.align(8);
    a.label("x");
    a.dword(std::bit_cast<uint64_t>(1.5));
    a.dword(std::bit_cast<uint64_t>(2.5));
    auto r = run(a);
    const auto &v2 = r.iss->hart(0).v[2];
    double d0, d1;
    std::memcpy(&d0, v2.data(), 8);
    std::memcpy(&d1, v2.data() + 8, 8);
    EXPECT_DOUBLE_EQ(d0, 4.5);
    EXPECT_DOUBLE_EQ(d1, 7.5);
}

TEST(IssVector, HalfPrecisionAdd)
{
    Assembler a;
    a.la(s0, "h");
    a.li(t0, 8);
    a.vsetvli(t0, t0, VType{.sew = 16, .lmul = 1});
    a.vle(v1, s0);
    a.vfadd_vv(v2, v1, v1); // double every element
    a.vse(v2, s0);
    a.ebreak();
    a.align(2);
    a.label("h");
    for (int i = 0; i < 8; ++i)
        a.half(floatToFp16(0.5f * float(i + 1)));
    auto r = run(a);
    Addr h = r.prog.symbol("h");
    for (int i = 0; i < 8; ++i) {
        float v = fp16ToFloat(uint16_t(r.mem.read(h + 2 * i, 2)));
        EXPECT_FLOAT_EQ(v, float(i + 1)) << i;
    }
}

TEST(IssVector, Vlen256DoublesVlmax)
{
    Assembler a;
    a.vsetvli(t0, zero, VType{.sew = 32, .lmul = 1});
    a.ebreak();
    auto r = run(a, 256);
    EXPECT_EQ(r.iss->hart(0).x[5], 8u); // 256/32
}

TEST(IssVector, SlideAndCompare)
{
    Assembler a;
    a.li(t0, 4);
    a.vsetvli(t0, t0, VType{.sew = 32, .lmul = 1});
    a.vmv_v_i(v1, 0);
    a.li(t1, 7);
    a.vmv_s_x(v1, t1);           // v1 = {7,0,0,0}
    a.vslideup_vi(v2, v1, 2);    // v2[2] = 7
    a.vmseq_vv(v3, v2, v1);      // compare bits
    a.vmv_x_s(a0, v2);           // a0 = v2[0]
    a.ebreak();
    auto r = run(a);
    const auto &v2 = r.iss->hart(0).v[2];
    int32_t e[4];
    std::memcpy(e, v2.data(), 16);
    EXPECT_EQ(e[2], 7);
}

} // namespace xt910
