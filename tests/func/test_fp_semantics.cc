/**
 * Exact-bit-pattern tests for the scalar FP corner cases fixed for the
 * differential fuzzer: FMIN/FMAX NaN and signed-zero handling, the
 * saturating FCVT family, FCLASS over raw encodings, and NaN-box
 * enforcement on single-precision register reads.
 *
 * All inputs are injected as integer bit patterns via fmv.{w,d}.x and
 * all results read back via fmv.x.{w,d} so host-compiler FP behaviour
 * never leaks into the expectations.
 */

#include <gtest/gtest.h>

#include "func/iss.h"

namespace xt910
{

using namespace reg;

namespace
{

constexpr uint64_t kQNanS = 0xffffffff7fc00000ull; // boxed canonical
constexpr uint64_t kSNanS = 0xffffffff7f800001ull;
constexpr uint64_t kQNanD = 0x7ff8000000000000ull;
constexpr uint64_t kSNanD = 0x7ff0000000000001ull;

constexpr uint64_t boxS(uint32_t b) { return 0xffffffff00000000ull | b; }

/** Assemble, run to halt, and return final x/f register files. */
struct RunResult
{
    std::array<uint64_t, 32> x;
    std::array<uint64_t, 32> f;
};

RunResult
runProgram(Assembler &a)
{
    Program p = a.assemble();
    Memory mem;
    Iss iss(mem, 1);
    iss.loadProgram(p);
    iss.run(1'000'000);
    EXPECT_TRUE(iss.halted()) << "program did not halt";
    return RunResult{iss.hart(0).x, iss.hart(0).f};
}

/** Run `op(fa0 <- fa1, fa2)` with the given bit patterns; returns the
 *  raw 64-bit content of fa0 (including any NaN boxing). */
template <typename Op>
uint64_t
fp3(uint64_t rs1Bits, uint64_t rs2Bits, Op op)
{
    Assembler a;
    a.li(a1, int64_t(rs1Bits));
    a.li(a2, int64_t(rs2Bits));
    a.fmv_d_x(fa1, a1);
    a.fmv_d_x(fa2, a2);
    op(a);
    a.fmv_x_d(a0, fa0);
    a.ebreak();
    return runProgram(a).x[10];
}

/** Run a unary `op(rd <- fa1)` where rd is a0; returns x[a0]. */
template <typename Op>
uint64_t
fpToX(uint64_t rs1Bits, Op op)
{
    Assembler a;
    a.li(a1, int64_t(rs1Bits));
    a.fmv_d_x(fa1, a1);
    op(a);
    a.ebreak();
    return runProgram(a).x[10];
}

} // namespace

// ---------------------------------------------------------------------
// FMIN / FMAX
// ---------------------------------------------------------------------

TEST(FpSemantics, FminFmaxSingleBothNanGivesCanonical)
{
    auto fmin = [](Assembler &a) { a.fmin_s(fa0, fa1, fa2); };
    auto fmax = [](Assembler &a) { a.fmax_s(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(kSNanS, kQNanS, fmin), kQNanS);
    EXPECT_EQ(fp3(kQNanS, kSNanS, fmax), kQNanS);
    // NaN payloads are not propagated: always the canonical quiet NaN.
    EXPECT_EQ(fp3(boxS(0x7fc12345u), boxS(0xffc00001u), fmin), kQNanS);
}

TEST(FpSemantics, FminFmaxSingleOneNanGivesOther)
{
    const uint64_t two = boxS(0x40000000u); // 2.0f
    auto fmin = [](Assembler &a) { a.fmin_s(fa0, fa1, fa2); };
    auto fmax = [](Assembler &a) { a.fmax_s(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(kQNanS, two, fmin), two);
    EXPECT_EQ(fp3(two, kSNanS, fmin), two);
    EXPECT_EQ(fp3(kQNanS, two, fmax), two);
    EXPECT_EQ(fp3(two, kSNanS, fmax), two);
}

TEST(FpSemantics, FminFmaxSingleSignedZeros)
{
    const uint64_t pz = boxS(0x00000000u);
    const uint64_t nz = boxS(0x80000000u);
    auto fmin = [](Assembler &a) { a.fmin_s(fa0, fa1, fa2); };
    auto fmax = [](Assembler &a) { a.fmax_s(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(nz, pz, fmin), nz);
    EXPECT_EQ(fp3(pz, nz, fmin), nz);
    EXPECT_EQ(fp3(nz, pz, fmax), pz);
    EXPECT_EQ(fp3(pz, nz, fmax), pz);
}

TEST(FpSemantics, FminFmaxDoubleBothNanGivesCanonical)
{
    auto fmin = [](Assembler &a) { a.fmin_d(fa0, fa1, fa2); };
    auto fmax = [](Assembler &a) { a.fmax_d(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(kSNanD, kQNanD, fmin), kQNanD);
    EXPECT_EQ(fp3(kQNanD, kQNanD, fmax), kQNanD);
    EXPECT_EQ(fp3(0x7ff8deadbeef0001ull, 0xfff8000000000001ull, fmax),
              kQNanD);
}

TEST(FpSemantics, FminFmaxDoubleOneNanAndZeros)
{
    const uint64_t one = 0x3ff0000000000000ull;
    const uint64_t pz = 0, nz = 0x8000000000000000ull;
    auto fmin = [](Assembler &a) { a.fmin_d(fa0, fa1, fa2); };
    auto fmax = [](Assembler &a) { a.fmax_d(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(kQNanD, one, fmin), one);
    EXPECT_EQ(fp3(one, kSNanD, fmax), one);
    EXPECT_EQ(fp3(nz, pz, fmin), nz);
    EXPECT_EQ(fp3(pz, nz, fmax), pz);
}

// ---------------------------------------------------------------------
// FCVT saturation
// ---------------------------------------------------------------------

TEST(FpSemantics, FcvtWSingleSaturates)
{
    auto op = [](Assembler &a) { a.fcvt_w_s(a0, fa1); };
    // NaN converts to the maximum positive value, not INT32_MIN.
    EXPECT_EQ(fpToX(kQNanS, op), uint64_t(INT32_MAX));
    EXPECT_EQ(fpToX(kSNanS, op), uint64_t(INT32_MAX));
    // +inf / large positive clamp to INT32_MAX.
    EXPECT_EQ(fpToX(boxS(0x7f800000u), op), uint64_t(INT32_MAX));
    EXPECT_EQ(fpToX(boxS(0x4f800000u), op), uint64_t(INT32_MAX)); // 2^32
    // -inf / large negative clamp to INT32_MIN (sign-extended).
    EXPECT_EQ(fpToX(boxS(0xff800000u), op),
              uint64_t(int64_t(INT32_MIN)));
    // In-range truncates toward zero: -1.5f -> -1.
    EXPECT_EQ(fpToX(boxS(0xbfc00000u), op), uint64_t(int64_t(-1)));
}

TEST(FpSemantics, FcvtWuSingleSaturates)
{
    auto op = [](Assembler &a) { a.fcvt_wu_s(a0, fa1); };
    // NaN and overflow produce UINT32_MAX, sign-extended per RV64.
    EXPECT_EQ(fpToX(kQNanS, op), ~0ull);
    EXPECT_EQ(fpToX(boxS(0x4f800000u), op), ~0ull); // 2^32
    EXPECT_EQ(fpToX(boxS(0x7f800000u), op), ~0ull); // +inf
    // Negative input to an unsigned conversion clamps to zero.
    EXPECT_EQ(fpToX(boxS(0xbf800000u), op), 0u); // -1.0f
    EXPECT_EQ(fpToX(boxS(0xff800000u), op), 0u); // -inf
    // -0.9f truncates to 0 (not clamped through the negative branch).
    EXPECT_EQ(fpToX(boxS(0xbf666666u), op), 0u);
    // Results with bit 31 set sign-extend: 2^31 -> 0xffffffff80000000.
    EXPECT_EQ(fpToX(boxS(0x4f000000u), op), 0xffffffff80000000ull);
}

TEST(FpSemantics, FcvtLSingleSaturates)
{
    auto op = [](Assembler &a) { a.fcvt_l_s(a0, fa1); };
    EXPECT_EQ(fpToX(kQNanS, op), uint64_t(INT64_MAX));
    EXPECT_EQ(fpToX(boxS(0x5f000000u), op), uint64_t(INT64_MAX)); // 2^63
    EXPECT_EQ(fpToX(boxS(0x7f800000u), op), uint64_t(INT64_MAX));
    EXPECT_EQ(fpToX(boxS(0xff800000u), op), uint64_t(INT64_MIN));
    EXPECT_EQ(fpToX(boxS(0xdf000001u), op), uint64_t(INT64_MIN));
}

TEST(FpSemantics, FcvtLuSingleSaturates)
{
    auto op = [](Assembler &a) { a.fcvt_lu_s(a0, fa1); };
    EXPECT_EQ(fpToX(kQNanS, op), UINT64_MAX);
    EXPECT_EQ(fpToX(boxS(0x5f800000u), op), UINT64_MAX); // 2^64
    EXPECT_EQ(fpToX(boxS(0xbf800000u), op), 0u);         // -1.0f
}

TEST(FpSemantics, FcvtDoubleSaturates)
{
    const uint64_t inf = 0x7ff0000000000000ull;
    const uint64_t ninf = 0xfff0000000000000ull;
    auto w = [](Assembler &a) { a.fcvt_w_d(a0, fa1); };
    auto wu = [](Assembler &a) { a.fcvt_wu_d(a0, fa1); };
    auto l = [](Assembler &a) { a.fcvt_l_d(a0, fa1); };
    auto lu = [](Assembler &a) { a.fcvt_lu_d(a0, fa1); };
    EXPECT_EQ(fpToX(kQNanD, w), uint64_t(INT32_MAX));
    EXPECT_EQ(fpToX(inf, w), uint64_t(INT32_MAX));
    EXPECT_EQ(fpToX(ninf, w), uint64_t(int64_t(INT32_MIN)));
    // 2^31 exactly representable as a double: clamps to INT32_MAX.
    EXPECT_EQ(fpToX(0x41e0000000000000ull, w), uint64_t(INT32_MAX));
    EXPECT_EQ(fpToX(kSNanD, wu), ~0ull);
    EXPECT_EQ(fpToX(0xbff0000000000000ull, wu), 0u); // -1.0
    EXPECT_EQ(fpToX(kQNanD, l), uint64_t(INT64_MAX));
    EXPECT_EQ(fpToX(0x43e0000000000000ull, l),
              uint64_t(INT64_MAX)); // 2^63
    EXPECT_EQ(fpToX(ninf, l), uint64_t(INT64_MIN));
    EXPECT_EQ(fpToX(kQNanD, lu), UINT64_MAX);
    EXPECT_EQ(fpToX(0x43f0000000000000ull, lu), UINT64_MAX); // 2^64
    EXPECT_EQ(fpToX(ninf, lu), 0u);
}

// ---------------------------------------------------------------------
// FCLASS
// ---------------------------------------------------------------------

TEST(FpSemantics, FclassSingleAllCategories)
{
    auto op = [](Assembler &a) { a.fclass_s(a0, fa1); };
    EXPECT_EQ(fpToX(boxS(0xff800000u), op), 1u << 0); // -inf
    EXPECT_EQ(fpToX(boxS(0xbf800000u), op), 1u << 1); // -1.0f
    EXPECT_EQ(fpToX(boxS(0x80000001u), op), 1u << 2); // -subnormal
    EXPECT_EQ(fpToX(boxS(0x80000000u), op), 1u << 3); // -0
    EXPECT_EQ(fpToX(boxS(0x00000000u), op), 1u << 4); // +0
    EXPECT_EQ(fpToX(boxS(0x007fffffu), op), 1u << 5); // +subnormal
    EXPECT_EQ(fpToX(boxS(0x3f800000u), op), 1u << 6); // +1.0f
    EXPECT_EQ(fpToX(boxS(0x7f800000u), op), 1u << 7); // +inf
    EXPECT_EQ(fpToX(kSNanS, op), 1u << 8);            // sNaN
    EXPECT_EQ(fpToX(kQNanS, op), 1u << 9);            // qNaN
    // Negative-signed NaNs classify by quiet bit, not by sign.
    EXPECT_EQ(fpToX(boxS(0xff800001u), op), 1u << 8);
    EXPECT_EQ(fpToX(boxS(0xffc00000u), op), 1u << 9);
}

TEST(FpSemantics, FclassDoubleAllCategories)
{
    auto op = [](Assembler &a) { a.fclass_d(a0, fa1); };
    EXPECT_EQ(fpToX(0xfff0000000000000ull, op), 1u << 0);
    EXPECT_EQ(fpToX(0xbff0000000000000ull, op), 1u << 1);
    EXPECT_EQ(fpToX(0x8000000000000001ull, op), 1u << 2);
    EXPECT_EQ(fpToX(0x8000000000000000ull, op), 1u << 3);
    EXPECT_EQ(fpToX(0x0000000000000000ull, op), 1u << 4);
    EXPECT_EQ(fpToX(0x000fffffffffffffull, op), 1u << 5);
    EXPECT_EQ(fpToX(0x3ff0000000000000ull, op), 1u << 6);
    EXPECT_EQ(fpToX(0x7ff0000000000000ull, op), 1u << 7);
    EXPECT_EQ(fpToX(kSNanD, op), 1u << 8);
    EXPECT_EQ(fpToX(kQNanD, op), 1u << 9);
}

// ---------------------------------------------------------------------
// NaN boxing on single-precision reads
// ---------------------------------------------------------------------

TEST(FpSemantics, NonBoxedSingleReadsAsCanonicalNan)
{
    // The low word holds 1.0f but the high word is not all-ones, so
    // every single-precision consumer must see the canonical qNaN.
    const uint64_t unboxed = 0x000000003f800000ull;
    auto fclass = [](Assembler &a) { a.fclass_s(a0, fa1); };
    EXPECT_EQ(fpToX(unboxed, fclass), 1u << 9);

    auto fmin = [](Assembler &a) { a.fmin_s(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(unboxed, boxS(0x40000000u), fmin),
              boxS(0x40000000u));

    // feq against itself: a non-boxed value is NaN, so not equal.
    auto feq = [](Assembler &a) { a.feq_s(a0, fa1, fa1); };
    EXPECT_EQ(fpToX(unboxed, feq), 0u);
    EXPECT_EQ(fpToX(boxS(0x3f800000u), feq), 1u);

    // Arithmetic on a non-boxed operand yields the canonical qNaN.
    auto fadd = [](Assembler &a) { a.fadd_s(fa0, fa1, fa2); };
    EXPECT_EQ(fp3(unboxed, boxS(0x3f800000u), fadd), kQNanS);
}

TEST(FpSemantics, ProperlyBoxedSingleIsUsedAsIs)
{
    // fmv.w.x must produce a boxed value that reads back unchanged.
    Assembler a;
    a.li(a1, int64_t(0x40490fdbu)); // pi as float bits
    a.fmv_w_x(fa1, a1);
    a.fsgnj_s(fa0, fa1, fa1);
    a.fmv_x_d(a0, fa0);
    a.ebreak();
    EXPECT_EQ(runProgram(a).x[10], boxS(0x40490fdbu));
}

TEST(FpSemantics, FcvtSingleFromIntegerIsBoxed)
{
    Assembler a;
    a.li(a1, 7);
    a.fcvt_s_w(fa0, a1);
    a.fmv_x_d(a0, fa0);
    a.li(a2, -3);
    a.fcvt_s_l(fa1, a2);
    a.fmv_x_d(a3, fa1);
    a.ebreak();
    auto r = runProgram(a);
    EXPECT_EQ(r.x[10], boxS(0x40e00000u)); // 7.0f
    EXPECT_EQ(r.x[13], boxS(0xc0400000u)); // -3.0f
}

} // namespace xt910
