/**
 * CLINT + machine-interrupt tests (§II: standard CLINT, timers): timer
 * interrupts into an M-mode handler, software interrupts as IPIs
 * between harts, and mstatus.MIE semantics across trap entry / mret.
 */

#include <gtest/gtest.h>

#include "func/clint.h"
#include "func/csr.h"
#include "func/iss.h"

namespace xt910
{

using namespace reg;

TEST(Clint, DeviceRegisterLayout)
{
    Clint c(2);
    Addr base = c.baseAddr();
    // msip for hart 1.
    c.write(base + 4, 4, 1);
    EXPECT_TRUE(c.softwarePending(1));
    EXPECT_FALSE(c.softwarePending(0));
    c.write(base + 4, 4, 0);
    EXPECT_FALSE(c.softwarePending(1));
    // mtimecmp for hart 0.
    c.write(base + Clint::mtimecmpOff, 8, 500);
    EXPECT_FALSE(c.timerPending(0));
    c.tick(500);
    EXPECT_TRUE(c.timerPending(0));
    EXPECT_EQ(c.read(base + Clint::mtimeOff, 8), 500u);
}

TEST(Interrupts, TimerTrapsToHandler)
{
    // Main loop spins incrementing a1; the handler counts into a2,
    // pushes mtimecmp forward, and mrets. After 3 timer interrupts the
    // handler exits the program.
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);
    // mtimecmp += 200
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.ld(t1, t0, 0);
    a.addi(t1, t1, 200);
    a.sd(t1, t0, 0);
    a.li(t2, 3);
    a.blt(a2, t2, "resume");
    a.ebreak();
    a.label("resume");
    a.mret();
    a.label("_start");
    // mtvec = handler
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    // mtimecmp = now + 100
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimeOff));
    a.ld(t1, t0, 0);
    a.addi(t1, t1, 100);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.sd(t1, t0, 0);
    // mie.MTIE, mstatus.MIE
    a.li(t0, 1 << 7);
    a.csrw(csr::mie, t0);
    a.li(t0, 1 << 3);
    a.csrw(csr::mstatus, t0);
    a.label("spin");
    a.addi(a1, a1, 1);
    a.j("spin");

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(100000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], 3u);  // three interrupts handled
    EXPECT_GT(iss.hart(0).x[11], 50u); // the main loop made progress
}

TEST(Interrupts, DisabledMieBlocksDelivery)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.ebreak(); // should never run
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.sd(zero, t0, 0); // timer already pending
    a.li(t0, 1 << 7);
    a.csrw(csr::mie, t0);
    // mstatus.MIE left clear: no delivery.
    a.li(a1, 1000);
    a.label("spin");
    a.addi(a1, a1, -1);
    a.bnez(a1, "spin");
    a.li(a0, 42);
    a.ebreak();
    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(100000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[10], 42u); // exited via the main path
}

TEST(Interrupts, SoftwareInterruptAsIpi)
{
    // Hart 0 sends an IPI to hart 1 by writing its msip; hart 1 spins
    // with interrupts enabled and its handler stores a flag and halts.
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    // clear own msip: addr = clint + 4*hartid
    a.csrr(t0, csr::mhartid);
    a.slli(t0, t0, 2);
    a.li(t1, int64_t(Clint::defaultBase));
    a.add(t1, t1, t0);
    a.sw(zero, t1, 0);
    a.la(t2, "flag");
    a.li(t3, 1);
    a.sd(t3, t2, 0);
    a.ebreak();
    a.label("_start");
    a.csrr(t0, csr::mhartid);
    a.bnez(t0, "receiver");
    // hart 0: send IPI to hart 1, then halt.
    a.li(t1, int64_t(Clint::defaultBase + 4));
    a.li(t2, 1);
    a.sw(t2, t1, 0);
    a.ebreak();
    a.label("receiver");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t0, 1 << 3);
    a.csrw(csr::mie, t0);
    a.csrw(csr::mstatus, t0);
    a.label("spin");
    a.j("spin");
    a.align(8);
    a.label("flag");
    a.dword(0);

    Memory mem;
    Iss iss(mem, 2);
    Program p = a.assemble();
    iss.loadProgram(p);
    iss.run(100000);
    EXPECT_TRUE(iss.allHalted());
    EXPECT_EQ(mem.read(p.symbol("flag"), 8), 1u);
}

TEST(Interrupts, MretRestoresMie)
{
    // Inside the handler MIE is clear (no nesting); after mret the
    // next pending interrupt is taken again.
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);
    a.csrr(t0, csr::mstatus);
    a.andi(t0, t0, 8);
    a.add(a3, a3, t0); // accumulates 0 if MIE clear inside handler
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.ld(t1, t0, 0);
    a.addi(t1, t1, 150);
    a.sd(t1, t0, 0);
    a.li(t2, 2);
    a.blt(a2, t2, "resume");
    a.ebreak();
    a.label("resume");
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.li(t1, 50);
    a.sd(t1, t0, 0);
    a.li(t0, 1 << 7);
    a.csrw(csr::mie, t0);
    a.li(t0, 1 << 3);
    a.csrw(csr::mstatus, t0);
    a.label("spin");
    a.j("spin");
    Memory mem;
    Iss iss(mem);
    iss.loadProgram(a.assemble());
    iss.run(100000);
    ASSERT_TRUE(iss.halted());
    EXPECT_EQ(iss.hart(0).x[12], 2u); // re-delivered after mret
    EXPECT_EQ(iss.hart(0).x[13], 0u); // MIE clear inside handler
}

} // namespace xt910
