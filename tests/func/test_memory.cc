#include <gtest/gtest.h>

#include "common/random.h"
#include "func/memory.h"
#include "xasm/assembler.h"

namespace xt910
{

TEST(Memory, ReadsZeroWhenUntouched)
{
    Memory m;
    EXPECT_EQ(m.read(0x1000, 8), 0u);
    EXPECT_EQ(m.read(0xdeadbeef, 1), 0u);
}

TEST(Memory, ReadWriteVariousSizes)
{
    Memory m;
    m.write(0x100, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x100, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u);
    EXPECT_EQ(m.read(0x100, 1), 0x88u);
    EXPECT_EQ(m.read(0x107, 1), 0x11u);
    m.write(0x102, 2, 0xbeef);
    EXPECT_EQ(m.read(0x100, 8), 0x11223344beef7788ull);
}

TEST(Memory, UnalignedAndCrossPage)
{
    Memory m;
    // Write straddling a 4 KiB page boundary.
    Addr a = 0x1ffd;
    m.write(a, 8, 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.read(a, 8), 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.read(0x2000, 1), (0xa1b2c3d4e5f60718ull >> 24) & 0xff);
    EXPECT_GE(m.pageCount(), 2u);
}

TEST(Memory, BulkRoundTrip)
{
    Memory m;
    Xorshift64 rng(99);
    std::vector<uint8_t> buf(10000);
    for (auto &b : buf)
        b = uint8_t(rng.next());
    m.writeBytes(0x7ff8, buf.data(), buf.size()); // crosses pages
    std::vector<uint8_t> out(buf.size());
    m.readBytes(0x7ff8, out.data(), out.size());
    EXPECT_EQ(buf, out);
}

TEST(Memory, TypedAccessors)
{
    Memory m;
    m.writeT<double>(0x400, 3.25);
    EXPECT_DOUBLE_EQ(m.readT<double>(0x400), 3.25);
    m.writeT<int32_t>(0x500, -7);
    EXPECT_EQ(m.readT<int32_t>(0x500), -7);
}

TEST(Memory, AccessOkHonoursPhysLimit)
{
    Memory m;
    EXPECT_TRUE(m.accessOk(0x8000'0000, 8));
    EXPECT_TRUE(m.accessOk(m.physLimit() - 8, 8));
    // At / straddling / beyond the bound.
    EXPECT_FALSE(m.accessOk(m.physLimit(), 1));
    EXPECT_FALSE(m.accessOk(m.physLimit() - 4, 8));
    EXPECT_FALSE(m.accessOk(~Addr(0), 8)); // end-of-space wraparound

    m.setPhysLimit(0x1'0000);
    EXPECT_TRUE(m.accessOk(0xfff8, 8));
    EXPECT_FALSE(m.accessOk(0xfff9, 8));
    EXPECT_EQ(m.physLimit(), 0x1'0000u);
}

TEST(Memory, FaultRangesRejectOverlappingAccesses)
{
    Memory m;
    m.addFaultRange(0x4000, 0x1000);
    EXPECT_FALSE(m.accessOk(0x4000, 1));
    EXPECT_FALSE(m.accessOk(0x4fff, 1));
    EXPECT_FALSE(m.accessOk(0x3ffd, 8)); // tail overlaps the hole
    EXPECT_TRUE(m.accessOk(0x3ff8, 8));  // ends exactly at the hole
    EXPECT_TRUE(m.accessOk(0x5000, 8)); // starts exactly past the hole
    EXPECT_TRUE(m.accessOk(0x3000, 4));

    m.addFaultRange(0x9000, 0x10); // multiple ranges coexist
    EXPECT_FALSE(m.accessOk(0x9008, 1));
    EXPECT_FALSE(m.accessOk(0x4800, 2));

    m.clearFaultRanges();
    EXPECT_TRUE(m.accessOk(0x4000, 8));
    EXPECT_TRUE(m.accessOk(0x9008, 1));
}

TEST(Memory, LoadProgramPlacesImage)
{
    Assembler a(0x80000000);
    a.dword(0xcafebabe12345678ull);
    Program p = a.assemble();
    Memory m;
    m.loadProgram(p);
    EXPECT_EQ(m.read(0x80000000, 8), 0xcafebabe12345678ull);
}

} // namespace xt910
