/**
 * Tests for the event-skip schedulers and struct-of-arrays window
 * containers (core/bwlimit.h, core/sched.h):
 *
 *  - ring/heap/store-queue wraparound, full/empty and snapshot
 *    round-trip behaviour;
 *  - StageGate / IssueGate / PortSchedule against naive
 *    tick-every-cycle reference models (randomized request streams);
 *  - the System-level event-skip batch dispatch: with the fast path
 *    disabled every instruction takes the full heap round, and the
 *    resulting cycle counts and stats must be identical — exercised on
 *    a directed multi-hart scenario with CLINT timer interrupts, and
 *    on a spin scenario where the watchdog arms (and fires) mid-batch.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <sstream>
#include <unordered_map>

#include "core/bwlimit.h"
#include "core/sched.h"
#include "core/system.h"
#include "fault/campaign.h"
#include "func/clint.h"
#include "func/csr.h"
#include "mem/memsystem.h"
#include "snap/snapshot.h"

namespace xt910
{

using namespace reg;

// ---------------------------------------------------------------- rings

TEST(CycleRing, WrapsAroundAndKeepsFifoOrder)
{
    std::vector<uint64_t> storage(4, 0);
    CycleRing ring;
    ring.bind(storage.data(), 4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.busyHorizon(), 0u);

    // Push/pop more than capacity to force wraparound several times.
    Cycle next = 1;
    ring.pushBack(next++);
    for (int i = 0; i < 20; ++i) {
        ring.pushBack(next++);
        if (ring.size() == 4) {
            EXPECT_EQ(ring.front(), next - ring.size());
            ring.popFront();
        }
    }
    EXPECT_EQ(ring.back(), next - 1);
    EXPECT_EQ(ring.busyHorizon(), next - 1);
    while (!ring.empty()) {
        Cycle f = ring.front();
        ring.popFront();
        if (!ring.empty())
            EXPECT_EQ(ring.front(), f + 1); // FIFO across the wrap
    }
}

TEST(CycleRing, FillsToCapacityAndSnapshotsAcrossTheWrap)
{
    std::vector<uint64_t> storage(3, 0);
    CycleRing ring;
    ring.bind(storage.data(), 3);
    // Rotate the head so the live span crosses the physical end.
    ring.pushBack(10);
    ring.pushBack(20);
    ring.popFront();
    ring.pushBack(30);
    ring.pushBack(40); // full: head=1, entries 20,30,40 wrap
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 20u);
    EXPECT_EQ(ring.back(), 40u);

    SnapWriter w;
    ring.snapSave(w);
    std::vector<uint64_t> storage2(3, 0);
    CycleRing ring2;
    ring2.bind(storage2.data(), 3);
    SnapReader r(w.data().data(), w.size());
    ring2.snapLoad(r);
    EXPECT_EQ(ring2.size(), 3u);
    EXPECT_EQ(ring2.front(), 20u);
    EXPECT_EQ(ring2.back(), 40u);
    ring2.popFront();
    EXPECT_EQ(ring2.front(), 30u);
}

TEST(SortedCycleRing, DropThroughMatchesPopLoopReference)
{
    // dropThrough(when) must be exactly "pop every min <= when": run
    // the ring against a multiset popped one minimum at a time.
    std::vector<uint64_t> storage(32, 0);
    SortedCycleRing ring;
    ring.bind(storage.data(), 32);
    std::multiset<Cycle> ref;

    std::mt19937_64 rng(777);
    Cycle clock = 0;
    for (int i = 0; i < 4000; ++i) {
        if (ref.size() < 32 && (rng() & 1)) {
            Cycle c = clock + rng() % 40;
            ring.push(c);
            ref.insert(c);
        } else {
            clock += rng() % 25;
            ring.dropThrough(clock);
            while (!ring.empty() && ring.min() <= clock)
                ring.pop();
            while (!ref.empty() && *ref.begin() <= clock)
                ref.erase(ref.begin());
        }
        ASSERT_EQ(ring.size(), ref.size()) << "step " << i;
        if (!ref.empty())
            ASSERT_EQ(ring.min(), *ref.begin()) << "step " << i;
    }
}

TEST(SortedCycleRing, MatchesMultisetUnderRandomOps)
{
    std::vector<uint64_t> storage(64, 0);
    SortedCycleRing heap;
    heap.bind(storage.data(), 64);
    std::multiset<Cycle> ref;

    std::mt19937_64 rng(12345);
    for (int i = 0; i < 2000; ++i) {
        bool push = ref.empty() ||
                    (ref.size() < 64 && (rng() & 3) != 0);
        if (push) {
            Cycle c = rng() % 1000;
            heap.push(c);
            ref.insert(c);
        } else {
            heap.pop();
            ref.erase(ref.begin());
        }
        ASSERT_EQ(heap.size(), ref.size());
        if (!ref.empty())
            ASSERT_EQ(heap.min(), *ref.begin());
    }
}

TEST(SortedCycleRing, SnapshotRoundTripPreservesOrder)
{
    std::vector<uint64_t> storage(8, 0);
    SortedCycleRing heap;
    heap.bind(storage.data(), 8);
    for (Cycle c : {42u, 7u, 99u, 7u, 13u})
        heap.push(c);

    SnapWriter w;
    heap.snapSave(w);
    std::vector<uint64_t> storage2(8, 0);
    SortedCycleRing heap2;
    heap2.bind(storage2.data(), 8);
    SnapReader r(w.data().data(), w.size());
    heap2.snapLoad(r);

    EXPECT_EQ(heap2.size(), 5u);
    EXPECT_EQ(heap2.busyHorizon(), 99u);
    std::vector<Cycle> drained;
    while (!heap2.empty()) {
        drained.push_back(heap2.min());
        heap2.pop();
    }
    EXPECT_EQ(drained, (std::vector<Cycle>{7, 7, 13, 42, 99}));
}

TEST(StoreQueueSoa, DropsOldestWhenFullAndScansYoungestFirst)
{
    CoreArena arena;
    arena.reserve(6 * 3);
    StoreQueueSoa sq;
    sq.bind(arena, 3);
    EXPECT_TRUE(sq.empty());
    EXPECT_EQ(sq.maxAddrReady(), 0u);

    for (uint32_t k = 0; k < 5; ++k)
        sq.push(/*pc=*/0x100 + k, /*addr=*/0x1000 + 8 * k, /*bytes=*/8,
                /*addrReady=*/10 + k, /*dataReady=*/20 + k,
                /*retire=*/30 + k);
    // Capacity 3: entries 2,3,4 survive (oldest two dropped).
    EXPECT_EQ(sq.size(), 3u);
    EXPECT_EQ(sq.addrAt(sq.slot(0)), 0x1000u + 16);
    EXPECT_EQ(sq.addrAt(sq.slot(2)), 0x1000u + 32);
    EXPECT_EQ(sq.maxAddrReady(), 14u);
    EXPECT_EQ(sq.busyHorizon(), 34u); // max retire over live entries
}

TEST(StoreQueueSoa, SnapshotRoundTripKeepsLogicalOrder)
{
    CoreArena arena;
    arena.reserve(6 * 2);
    StoreQueueSoa sq;
    sq.bind(arena, 2);
    sq.push(1, 0x10, 4, 1, 2, 3);
    sq.push(2, 0x20, 8, 4, 5, 6);
    sq.push(3, 0x30, 2, 7, 8, 9); // evicts the first

    SnapWriter w;
    sq.snapSave(w);
    CoreArena arena2;
    arena2.reserve(6 * 2);
    StoreQueueSoa sq2;
    sq2.bind(arena2, 2);
    SnapReader r(w.data().data(), w.size());
    sq2.snapLoad(r);

    ASSERT_EQ(sq2.size(), 2u);
    EXPECT_EQ(sq2.addrAt(sq2.slot(0)), 0x20u);
    EXPECT_EQ(sq2.sizeAt(sq2.slot(0)), 8u);
    EXPECT_EQ(sq2.addrAt(sq2.slot(1)), 0x30u);
    EXPECT_EQ(sq2.retireAt(sq2.slot(1)), 9u);
}

// ------------------------------------------- schedulers vs references

TEST(StageGate, MatchesTickEveryCycleReference)
{
    // Reference: walk candidate cycles one at a time under the
    // in-order constraint (never earlier than the last grant).
    for (unsigned width : {1u, 3u, 4u}) {
        StageGate gate(width);
        std::map<Cycle, unsigned> cnt;
        Cycle lastRef = 0;
        std::mt19937_64 rng(width);
        Cycle drift = 1;
        for (int i = 0; i < 5000; ++i) {
            drift += rng() % 3;
            Cycle earliest = drift > 5 ? drift - rng() % 5 : drift;
            Cycle c = std::max(earliest, lastRef);
            while (cnt[c] >= width)
                ++c;
            ++cnt[c];
            lastRef = c;
            ASSERT_EQ(gate.schedule(earliest), c) << "step " << i;
            ASSERT_EQ(gate.busyHorizon(), lastRef);
            ASSERT_GE(gate.nextEventCycle(), lastRef);
        }
    }
}

TEST(IssueGate, MatchesTickEveryCycleReference)
{
    // Reference: unbounded per-cycle counts, walked one cycle at a
    // time. Requests stay within the gate's lookback so the window
    // floor never clamps (clamping is the documented semantics change
    // for ancient requests; see DESIGN.md §3f).
    IssueGate gate(8);
    std::unordered_map<Cycle, unsigned> cnt;
    std::mt19937_64 rng(99);
    Cycle maxSeen = 0;
    for (int i = 0; i < 20000; ++i) {
        Cycle lo = maxSeen > 500 ? maxSeen - 500 : 0;
        Cycle earliest = lo + rng() % 600;
        Cycle c = earliest;
        while (cnt[c] >= 8)
            ++c;
        ++cnt[c];
        maxSeen = std::max(maxSeen, c);
        ASSERT_EQ(gate.schedule(earliest), c) << "step " << i;
        ASSERT_EQ(gate.busyHorizon(), maxSeen);
    }
}

TEST(PortSchedule, MatchesTickEveryCycleReference)
{
    // Reference: a set of busy cycles; probe walks candidates one
    // cycle at a time and restarts after the last conflict.
    PortSchedule port;
    std::set<Cycle> busy;
    std::mt19937_64 rng(7);
    Cycle maxSeen = 0;
    for (int i = 0; i < 8000; ++i) {
        Cycle lo = maxSeen > 800 ? maxSeen - 800 : 0;
        Cycle earliest = lo + rng() % 900;
        unsigned len = 1 + unsigned(rng() % 4);

        Cycle c = earliest;
        for (;;) {
            bool free = true;
            Cycle conflict = 0;
            for (Cycle k = c; k < c + len; ++k)
                if (busy.count(k)) {
                    free = false;
                    conflict = k; // last busy cycle in the range
                }
            if (free)
                break;
            c = conflict + 1; // restart past the conflict
        }
        ASSERT_EQ(port.probe(earliest, len), c) << "step " << i;
        port.book(c, len);
        for (Cycle k = c; k < c + len; ++k)
            busy.insert(k);
        maxSeen = std::max(maxSeen, c + len - 1);
        ASSERT_EQ(port.busyHorizon(), maxSeen);
    }
}

// ------------------------------------- window jumps larger than window

// Event-skip and fast-forward can advance the clock past the whole
// booking window in one step. The contract (DESIGN.md §3f): the slide
// must fully discard stale bookings — a request after the jump must
// never alias into counts/bits left over from pre-jump cycles. The
// references below only use windowFloor() for the documented
// clamp-to-floor of ancient requests; the booking state itself is
// modelled exactly.

TEST(IssueGate, ClockJumpPastWindowMatchesReference)
{
    IssueGate gate(4);
    std::unordered_map<Cycle, unsigned> cnt; // unbounded reference
    std::mt19937_64 rng(2024);
    Cycle maxSeen = 0;
    for (int i = 0; i < 30000; ++i) {
        Cycle earliest;
        const unsigned shape = unsigned(rng() % 100);
        if (shape < 2) {
            // Jump: far past the window top (>= base + window).
            earliest = maxSeen + IssueGate::window + rng() % 10000;
        } else if (shape < 10) {
            // Ancient request from long before the floor.
            earliest = rng() % 16;
        } else {
            Cycle lo = maxSeen > 300 ? maxSeen - 300 : 0;
            earliest = lo + rng() % 400;
        }
        // Documented semantics: requests behind the floor clamp up.
        Cycle c = std::max(earliest, gate.windowFloor());
        while (cnt[c] >= 4)
            ++c;
        ++cnt[c];
        maxSeen = std::max(maxSeen, c);
        ASSERT_EQ(gate.schedule(earliest), c) << "step " << i;
        ASSERT_EQ(gate.busyHorizon(), maxSeen);
    }
}

TEST(IssueGate, JumpPastWindowFullyFreesTheNewWindow)
{
    // Saturate the whole current window, then jump > window ahead:
    // every slot of the new window must be bookable from the floor up
    // (stale counts would shift the grants).
    IssueGate gate(2);
    for (int k = 0; k < 200; ++k) {
        gate.schedule(0);
        gate.schedule(0);
    }
    const Cycle far = 10 * IssueGate::window;
    ASSERT_EQ(gate.schedule(far), far);
    const Cycle floor = gate.windowFloor();
    ASSERT_GT(floor, Cycle(200)); // the old region is gone
    // Ancient requests clamp to the floor and fill it width-first.
    ASSERT_EQ(gate.schedule(0), floor);
    ASSERT_EQ(gate.schedule(0), floor);
    ASSERT_EQ(gate.schedule(0), floor + 1);
}

TEST(IssueGate, SnapshotRoundTripOfSlidWindow)
{
    // A gate whose window slid far from cycle 0 must restore
    // bit-identically: the same request stream gives the same grants.
    IssueGate a(3);
    std::mt19937_64 rng(5);
    Cycle maxSeen = 0;
    for (int i = 0; i < 500; ++i) {
        Cycle e = maxSeen + rng() % 3;
        maxSeen = std::max(maxSeen, a.schedule(e));
    }
    maxSeen = std::max(maxSeen, a.schedule(maxSeen + 5 * IssueGate::window));

    SnapWriter w;
    a.snapSave(w);
    IssueGate b(3);
    SnapReader r(w.data().data(), w.size());
    b.snapLoad(r);

    ASSERT_EQ(b.windowFloor(), a.windowFloor());
    ASSERT_EQ(b.busyHorizon(), a.busyHorizon());
    std::mt19937_64 rng2(17);
    for (int i = 0; i < 2000; ++i) {
        Cycle lo = a.windowFloor();
        Cycle e = lo + rng2() % (IssueGate::lookback + 64);
        ASSERT_EQ(b.schedule(e), a.schedule(e)) << "step " << i;
    }
}

TEST(PortSchedule, ClockJumpPastWindowMatchesReference)
{
    PortSchedule port;
    std::set<Cycle> busy; // unbounded reference bitmap
    std::mt19937_64 rng(31337);
    Cycle maxSeen = 0;
    for (int i = 0; i < 20000; ++i) {
        Cycle earliest;
        const unsigned shape = unsigned(rng() % 100);
        if (shape < 2)
            earliest = maxSeen + PortSchedule::window + rng() % 20000;
        else if (shape < 10)
            earliest = rng() % 16;
        else {
            Cycle lo = maxSeen > 600 ? maxSeen - 600 : 0;
            earliest = lo + rng() % 700;
        }
        unsigned len = 1 + unsigned(rng() % 4);

        Cycle c = std::max(earliest, port.windowFloor());
        for (;;) {
            bool free = true;
            Cycle conflict = 0;
            for (Cycle k = c; k < c + len; ++k)
                if (busy.count(k)) {
                    free = false;
                    conflict = k;
                }
            if (free)
                break;
            c = conflict + 1;
        }
        ASSERT_EQ(port.probe(earliest, len), c) << "step " << i;
        port.book(c, len);
        for (Cycle k = c; k < c + len; ++k)
            busy.insert(k);
        maxSeen = std::max(maxSeen, c + len - 1);
        ASSERT_EQ(port.busyHorizon(), maxSeen);
    }
}

TEST(PortSchedule, JumpPastWindowFullyFreesTheNewBitmap)
{
    PortSchedule port;
    for (Cycle k = 0; k < 300; ++k)
        port.book(k, 1);
    const Cycle far = 10 * PortSchedule::window;
    ASSERT_EQ(port.probe(far, 4), far);
    port.book(far, 4);
    const Cycle floor = port.windowFloor();
    ASSERT_GT(floor, Cycle(300));
    // The whole region below the jump target is genuinely free.
    ASSERT_EQ(port.probe(0, 8), floor);
    port.book(floor, 8);
    ASSERT_EQ(port.probe(0, 1), floor + 8);
}

TEST(PortSchedule, SnapshotRoundTripOfSlidWindow)
{
    PortSchedule a;
    std::mt19937_64 rng(23);
    Cycle maxSeen = 0;
    for (int i = 0; i < 500; ++i) {
        Cycle c = a.probe(maxSeen + rng() % 3, 1 + unsigned(rng() % 3));
        a.book(c, 1);
        maxSeen = std::max(maxSeen, c);
    }
    Cycle c = a.probe(maxSeen + 3 * PortSchedule::window, 2);
    a.book(c, 2);

    SnapWriter w;
    a.snapSave(w);
    PortSchedule b;
    SnapReader r(w.data().data(), w.size());
    b.snapLoad(r);

    ASSERT_EQ(b.windowFloor(), a.windowFloor());
    ASSERT_EQ(b.busyHorizon(), a.busyHorizon());
    std::mt19937_64 rng2(29);
    for (int i = 0; i < 2000; ++i) {
        Cycle lo = a.windowFloor();
        Cycle e = lo + rng2() % (PortSchedule::lookback + 64);
        unsigned len = 1 + unsigned(rng2() % 3);
        Cycle ca = a.probe(e, len);
        Cycle cb = b.probe(e, len);
        ASSERT_EQ(cb, ca) << "step " << i;
        a.book(ca, len);
        b.book(cb, len);
    }
}

// --------------------------------------------- system-level event skip

namespace
{

/** Timer-interrupt program: spin loop + handler that re-arms this
 *  hart's own mtimecmp and ebreaks after three interrupts (same shape
 *  as the func-level interrupt tests, here consumed by the timing
 *  model, and per-hart so every hart of a multi-core run halts). */
Program
timerInterruptProgram()
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler"); // a0 = &mtimecmp[mhartid], set up in _start
    a.addi(a2, a2, 1);
    a.ld(t1, a0, 0);
    a.addi(t1, t1, 200);
    a.sd(t1, a0, 0);
    a.li(t2, 3);
    a.blt(a2, t2, "resume");
    a.ebreak();
    a.label("resume");
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.csrr(a0, csr::mhartid);
    a.slli(a0, a0, 3);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.add(a0, a0, t0);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimeOff));
    a.ld(t1, t0, 0);
    a.addi(t1, t1, 100);
    a.sd(t1, a0, 0);
    a.li(t0, 1 << 7);
    a.csrw(csr::mie, t0);
    a.li(t0, 1 << 3);
    a.csrw(csr::mstatus, t0);
    a.label("spin");
    a.addi(a1, a1, 1);
    a.j("spin");
    return a.assemble();
}

struct AbDump
{
    RunResult r;
    std::string statsJson;
};

AbDump
runAb(const SystemConfig &cfg, const Program &p, bool disableFastPath)
{
    System sys(cfg);
    sys.disableFastPath = disableFastPath;
    sys.loadProgram(p);
    AbDump d;
    d.r = sys.run();
    std::ostringstream os;
    sys.dumpStatsJson(os, true);
    d.statsJson = os.str();
    return d;
}

} // namespace

TEST(EventSkip, BatchDispatchMatchesHeapReferenceWithInterrupts)
{
    // Two harts share the CLINT; timer interrupts redirect both mid-
    // run, so the batch fast path repeatedly crosses trap boundaries.
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.iss.enableClint = true;
    cfg.maxInsts = 2'000'000;
    Program p = timerInterruptProgram();

    AbDump fast = runAb(cfg, p, /*disableFastPath=*/false);
    AbDump slow = runAb(cfg, p, /*disableFastPath=*/true);

    EXPECT_EQ(fast.r.stop, StopReason::Halted);
    EXPECT_EQ(fast.r.insts, slow.r.insts);
    EXPECT_EQ(fast.r.cycles, slow.r.cycles);
    EXPECT_EQ(fast.r.coreCycles, slow.r.coreCycles);
    EXPECT_EQ(fast.r.coreInsts, slow.r.coreInsts);
    EXPECT_EQ(fast.statsJson, slow.statsJson);
}

TEST(EventSkip, WatchdogArmsAndFiresIdenticallyMidBatch)
{
    // An uninterruptible spin: hart 0 halts immediately, after which
    // hart 1's spin has no external rescue (no CLINT, no peer hart) —
    // the watchdog's spin counter arms while the batch dispatcher
    // keeps re-picking the sole remaining hart, and must fire at the
    // same instruction with or without the fast path.
    Assembler a;
    a.csrr(t0, csr::mhartid);
    a.bnez(t0, "spin");
    a.ebreak();
    a.label("spin");
    a.addi(a1, a1, 1);
    a.j("spin");
    Program p = a.assemble();

    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.iss.enableClint = false; // nothing can unblock the spin
    cfg.watchdog.spinWindowInsts = 2000;
    cfg.maxInsts = 1'000'000;

    AbDump fast = runAb(cfg, p, /*disableFastPath=*/false);
    AbDump slow = runAb(cfg, p, /*disableFastPath=*/true);

    EXPECT_EQ(fast.r.stop, StopReason::Watchdog);
    EXPECT_EQ(slow.r.stop, StopReason::Watchdog);
    EXPECT_EQ(fast.r.insts, slow.r.insts);
    EXPECT_EQ(fast.r.cycles, slow.r.cycles);
    EXPECT_EQ(fast.r.coreCycles, slow.r.coreCycles);
    EXPECT_EQ(fast.statsJson, slow.statsJson);
}

// ------------------------------------------- block-batched consume A/B

namespace
{

/** Like runAb but toggling the span/per-record consume hand-off
 *  (DESIGN.md §3h) instead of the event-skip batch dispatch. */
AbDump
runAbConsume(SystemConfig cfg, const Program &p,
             bool disableBlockConsume)
{
    cfg.disableBlockConsume = disableBlockConsume;
    System sys(cfg);
    sys.loadProgram(p);
    AbDump d;
    d.r = sys.run();
    std::ostringstream os;
    sys.dumpStatsJson(os, true);
    d.statsJson = os.str();
    return d;
}

} // namespace

TEST(BlockConsume, MultiHartClintInterruptsMatchPerRecordPath)
{
    // Spans engage whenever only one hart is runnable, and the CLINT
    // timer redirects both harts mid-run — so the block path crosses
    // interrupt delivery and hart-halt boundaries, and everything
    // observable must still match the per-record reference.
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.iss.enableClint = true;
    cfg.maxInsts = 2'000'000;
    Program p = timerInterruptProgram();

    AbDump block = runAbConsume(cfg, p, /*disableBlockConsume=*/false);
    AbDump record = runAbConsume(cfg, p, /*disableBlockConsume=*/true);

    EXPECT_EQ(block.r.stop, StopReason::Halted);
    EXPECT_EQ(block.r.insts, record.r.insts);
    EXPECT_EQ(block.r.cycles, record.r.cycles);
    EXPECT_EQ(block.r.coreCycles, record.r.coreCycles);
    EXPECT_EQ(block.r.coreInsts, record.r.coreInsts);
    EXPECT_EQ(block.statsJson, record.statsJson);
}

TEST(BlockConsume, FaultCampaignMatchesPerRecordPath)
{
    // Same campaign seed, block vs per-record timing path: trap
    // records take the slow slot either way, so the classification
    // counts and the whole campaign JSON must be identical.
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);
    a.csrr(t0, csr::mepc);
    a.addi(t0, t0, 4);
    a.csrw(csr::mepc, t0);
    a.mret();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(a0, 0);
    a.li(t0, 1);
    a.li(t1, 101);
    a.label("loop");
    a.add(a0, a0, t0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "loop");
    a.la(t6, "result");
    a.sd(a0, t6, 0);
    a.ebreak();
    a.align(8);
    a.label("result");
    a.dword(0);

    auto campaignJson = [&](bool disableBlockConsume) {
        CampaignConfig cc;
        cc.program = a.assemble();
        cc.expected = 5050;
        cc.runs = 20;
        cc.seed = 42;
        cc.jobs = 1;
        cc.sys.disableBlockConsume = disableBlockConsume;
        FaultCampaign campaign(cc);
        campaign.run();
        std::ostringstream os;
        campaign.reportJson(os);
        return os.str();
    };
    EXPECT_EQ(campaignJson(false), campaignJson(true));
}

TEST(BlockConsume, SnapshotRestoreMidBlockMatchesStraightRun)
{
    // Snapshot state captured per-record (the step hook forces the
    // reference path) must restore into a span-enabled System and
    // finish bit-identically: any block-consume cached state has to
    // rebuild from the serialized plan generation, not linger.
    Assembler a;
    a.li(a1, 20000);
    a.label("loop");
    a.addi(a0, a0, 3);
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    Program p = a.assemble();
    SystemConfig cfg;

    AbDump straight = runAbConsume(cfg, p, false);
    ASSERT_EQ(straight.r.stop, StopReason::Halted);

    std::vector<uint8_t> bytes;
    {
        System sys(cfg);
        sys.loadProgram(p);
        sys.stepHook = [&](uint64_t n, System &s) {
            if (bytes.empty() && n >= 30'000)
                bytes = snap::saveSnapshotBytes(s, n);
        };
        sys.run();
    }
    ASSERT_FALSE(bytes.empty());

    System resumed(cfg);
    resumed.loadProgram(p);
    snap::restoreSnapshotBytes(resumed, bytes.data(), bytes.size());
    RunResult r2 = resumed.run(); // no hook: spans re-enable here
    EXPECT_EQ(r2.stop, StopReason::Halted);
    EXPECT_EQ(r2.cycles, straight.r.cycles);
    EXPECT_EQ(r2.insts, straight.r.insts);
    std::ostringstream os;
    resumed.dumpStatsJson(os, true);
    EXPECT_EQ(os.str(), straight.statsJson);
}

TEST(BlockConsume, SimpleSlotMatchesSlowPathReference)
{
    // Core-level pin of the §3h hoisting contract: replaying one
    // record stream through consume() (always the slow reference
    // path) and through consumeBlock() (simple-slot fast path where
    // eligible) must produce identical schedules and identical stats.
    Assembler a;
    a.li(a1, 5000);
    a.label("loop");
    a.addi(a0, a0, 1);
    a.slli(a2, a0, 2);
    a.mul(a3, a0, a2);
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    Program p = a.assemble();

    Memory mem;
    IssOptions io;
    io.blockCache = true;
    Iss iss(mem, 1, io);
    iss.loadProgram(p);
    std::vector<ExecRecord> recs;
    while (!iss.halted(0) && recs.size() < 100'000)
        recs.push_back(iss.step(0));
    ASSERT_FALSE(recs.empty());

    const CoreParams cp = SystemConfig{}.core;
    MemSystemParams mp;
    mp.numCores = 1;
    Memory ptMem;

    MemSystem msA(mp);
    XtCore ref(0, cp, msA, ptMem);
    for (const ExecRecord &r : recs)
        ref.consume(r);

    MemSystem msB(mp);
    XtCore fast(0, cp, msB, ptMem);
    constexpr unsigned kSpan = 64;
    for (size_t at = 0; at < recs.size(); at += kSpan)
        fast.consumeBlock(recs.data() + at,
                          unsigned(std::min<size_t>(kSpan,
                                                    recs.size() - at)));

    // The ALU/MUL loop body is simple-slot eligible; the fast path
    // must actually engage for this test to pin anything.
    EXPECT_GT(fast.simpleSlotInsts(), recs.size() / 2);
    EXPECT_EQ(ref.simpleSlotInsts(), 0u);
    EXPECT_EQ(fast.retired(), ref.retired());
    EXPECT_EQ(fast.cycles(), ref.cycles());
    EXPECT_EQ(fast.busyHorizon(), ref.busyHorizon());
    std::ostringstream osRef, osFast;
    ref.dumpStats(osRef);
    fast.dumpStats(osFast);
    EXPECT_EQ(osFast.str(), osRef.str());
}

// ------------------------------------------------------- quiescence

TEST(EventSkip, BusyHorizonBoundsAllFutureActivity)
{
    // After a run completes, the system horizon must be >= every
    // core's retire cycle (nothing is still in flight past it).
    Assembler a;
    a.li(a1, 50);
    a.label("loop");
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    SystemConfig cfg;
    System sys(cfg);
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_GE(sys.busyHorizon(), r.cycles);
    EXPECT_TRUE(sys.core(0).quiescentAt(sys.busyHorizon()));
    EXPECT_FALSE(sys.core(0).quiescentAt(0));
}

} // namespace xt910
