/**
 * Timing-model tests for the XT-910 core: width limits, dependency
 * chains, branch prediction penalties, the loop buffer, the dual-issue
 * LSU with pseudo double store, memory-dependence prediction, and the
 * in-order comparison-core mode.
 */

#include <gtest/gtest.h>

#include "core/system.h"

namespace xt910
{

using namespace reg;

namespace
{

/** Run a single-core system over @p a and return the result. */
RunResult
run(Assembler &a, SystemConfig cfg = SystemConfig{})
{
    System sys(cfg);
    sys.loadProgram(a.assemble());
    return sys.run();
}

/** Build a kernel repeating @p body n times inside a counted loop. */
template <typename Fn>
Assembler
loopKernel(int iters, Fn &&body)
{
    Assembler a;
    a.li(s0, iters);
    a.label("loop");
    body(a);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    return a;
}

} // namespace

TEST(CoreTiming, IndependentAluIpcNearAluWidth)
{
    // A hot loop of independent ALU ops: throughput is bounded by the
    // two single-cycle ALU pipes plus the BJU running in parallel, so
    // IPC should exceed 2 but stay under the 3-wide decode limit.
    Assembler a = loopKernel(4000, [](Assembler &k) {
        k.addi(a0, a0, 1);
        k.addi(a1, a1, 1);
        k.addi(a2, a2, 1);
        k.addi(a3, a3, 1);
        k.addi(a4, a4, 1);
        k.addi(a5, a5, 1);
    });
    RunResult r = run(a);
    EXPECT_GT(r.ipc(), 1.8);
    EXPECT_LE(r.ipc(), 3.2);
}

TEST(CoreTiming, DependentChainIpcNearOne)
{
    // Serial dependency through a0: one ALU op per cycle at best.
    Assembler a = loopKernel(4000, [](Assembler &k) {
        k.addi(a0, a0, 1);
        k.addi(a0, a0, 1);
        k.addi(a0, a0, 1);
        k.addi(a0, a0, 1);
        k.addi(a0, a0, 1);
        k.addi(a0, a0, 1);
    });
    RunResult r = run(a);
    EXPECT_GT(r.ipc(), 0.8);
    EXPECT_LT(r.ipc(), 1.5);
}

TEST(CoreTiming, OooBeatsInOrderOnMixedCode)
{
    // Loads + dependent work + independent work: the 192-entry OoO
    // window should clearly beat the in-order dual-issue model.
    auto build = [] {
        Assembler a;
        a.la(s1, "data");
        a.li(s0, 2000);
        a.label("loop");
        a.ld(t0, s1, 0);
        a.addi(t1, t0, 1);   // dependent on load
        a.addi(a0, a0, 1);   // independent work
        a.addi(a1, a1, 1);
        a.addi(a2, a2, 1);
        a.mul(t2, t1, a0);
        a.addi(s0, s0, -1);
        a.bnez(s0, "loop");
        a.ebreak();
        a.align(8);
        a.label("data");
        a.dword(7);
        return a;
    };
    Assembler x = build();
    RunResult xt = run(x);

    SystemConfig inorder;
    inorder.core = u74ClassParams();
    Assembler u = build();
    RunResult io = run(u, inorder);

    EXPECT_GT(xt.ipc(), io.ipc() * 1.2)
        << "xt910 " << xt.ipc() << " vs u74-class " << io.ipc();
}

TEST(CoreTiming, MispredictsCostCycles)
{
    // A data-dependent unpredictable branch pattern vs an always-taken
    // one: the unpredictable version must be slower per instruction.
    auto build = [](bool predictable) {
        Assembler a;
        a.li(s0, 4000);
        a.li(s1, 0x9E3779B97F4A7C15ull); // lcg-ish state
        a.label("loop");
        if (predictable) {
            a.andi(t0, s0, 0); // always 0
        } else {
            // pseudo-random bit from the state
            a.srli(t0, s1, 13);
            a.xor_(s1, s1, t0);
            a.slli(t0, s1, 7);
            a.xor_(s1, s1, t0);
            a.andi(t0, s1, 1);
        }
        a.beqz(t0, "skip");
        a.addi(a0, a0, 1);
        a.label("skip");
        a.addi(s0, s0, -1);
        a.bnez(s0, "loop");
        a.ebreak();
        return a;
    };
    Assembler p = build(true);
    Assembler u = build(false);
    RunResult rp = run(p);
    RunResult ru = run(u);
    // Compare cycles per loop iteration (instruction counts differ).
    double cpiP = double(rp.cycles) / 4000.0;
    double cpiU = double(ru.cycles) / 4000.0;
    EXPECT_GT(cpiU, cpiP + 1.0);
}

TEST(CoreTiming, LoopBufferRemovesTakenBubbles)
{
    auto build = [] {
        return loopKernel(5000, [](Assembler &a) {
            a.addi(a0, a0, 1);
            a.addi(a1, a1, 1);
        });
    };
    SystemConfig with;
    Assembler a1v = build();
    RunResult rWith = run(a1v, with);

    SystemConfig without;
    without.core.lbuf.enabled = false;
    Assembler a2v = build();
    RunResult rWithout = run(a2v, without);

    EXPECT_LE(rWith.cycles, rWithout.cycles);
}

TEST(CoreTiming, LoadUseLatencyVisible)
{
    // Chain of dependent loads (pointer chase in L1): cycles per load
    // must be >= L1 hit latency.
    Assembler a;
    a.la(s1, "cell");
    a.li(s0, 3000);
    a.label("loop");
    a.ld(s1, s1, 0); // points to itself
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("cell");
    Program prog = a.assemble();
    SystemConfig cfg;
    System sys(cfg);
    // The cell must contain its own address (self-pointer chase).
    Addr cell = prog.symbol("cell");
    for (int i = 0; i < 8; ++i)
        prog.image.push_back(uint8_t(cell >> (8 * i)));
    sys.loadProgram(prog);
    RunResult r = sys.run();
    double cyclesPerIter = double(r.cycles) / 3000.0;
    EXPECT_GE(cyclesPerIter, 3.0); // >= L1 hit latency
    EXPECT_LE(cyclesPerIter, 8.0);
}

TEST(CoreTiming, StoreToLoadForwardingFast)
{
    // store then immediately load the same address, repeatedly: the
    // forward path keeps this fast despite the dependence.
    Assembler a;
    a.la(s1, "buf");
    a.li(s0, 3000);
    a.label("loop");
    a.sd(a0, s1, 0);
    a.ld(a1, s1, 0);
    a.addi(a0, a1, 1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("buf");
    a.zero(8);
    SystemConfig cfg;
    System sys(cfg);
    Assembler &ar = a;
    sys.loadProgram(ar.assemble());
    RunResult r = sys.run();
    EXPECT_GT(sys.core().forwardedLoads.value(), 2000u);
    EXPECT_LT(double(r.cycles) / 3000.0, 12.0);
}

TEST(CoreTiming, PseudoDualStoreHelpsStoreHeavyCode)
{
    // Stores whose data arrives late (divide-fed), to a fresh cache
    // line each iteration: splitting st.addr/st.data starts the cache
    // query/write-allocate fill at address generation instead of after
    // the data, hiding part of the miss (§V.B).
    auto build = [] {
        Assembler a;
        a.la(s1, "buf");
        a.li(s0, 1500);
        a.li(s2, 64);
        a.li(s3, 97);
        a.li(s4, 1000000);
        a.label("loop");
        // Load a disjoint word of the line stored last iteration: its
        // latency tracks when that line's fill began.
        a.ld(t1, s1, -56);
        a.add(t2, t1, s3);  // positive divisor
        a.div(t0, s4, t2);  // slow store data fed by the load
        a.sd(t0, s1, 0);    // store to a fresh line
        a.add(s1, s1, s2);
        a.addi(s0, s0, -1);
        a.bnez(s0, "loop");
        a.ebreak();
        a.align(64);
        a.label("buf");
        a.zero(64);
        return a;
    };
    // Short memory latency so the AG-vs-data head start is a large
    // fraction of the fill time.
    SystemConfig split;
    split.mem.dram.latency = 30;
    Assembler b1 = build();
    RunResult rs = run(b1, split);

    SystemConfig merged;
    merged.mem.dram.latency = 30;
    merged.core.pseudoDualStore = false;
    Assembler b2 = build();
    RunResult rm = run(b2, merged);

    EXPECT_LT(rs.cycles, rm.cycles);
}

TEST(CoreTiming, DualIssueLsuBeatsSingle)
{
    // Alternating loads and stores to disjoint addresses.
    auto build = [] {
        Assembler a;
        a.la(s1, "buf");
        a.li(s0, 3000);
        a.label("loop");
        a.ld(t0, s1, 0);
        a.sd(a0, s1, 64);
        a.ld(t1, s1, 128);
        a.sd(a1, s1, 192);
        a.addi(s0, s0, -1);
        a.bnez(s0, "loop");
        a.ebreak();
        a.align(8);
        a.label("buf");
        a.zero(256);
        return a;
    };
    SystemConfig dual;
    Assembler b1 = build();
    RunResult rd = run(b1, dual);

    SystemConfig single;
    single.core.lsuDualIssue = false;
    Assembler b2 = build();
    RunResult rsg = run(b2, single);

    EXPECT_LT(rd.cycles, rsg.cycles);
}

TEST(CoreTiming, MemDepPredictorLearnsViolations)
{
    // A store whose data is slow, followed by a load of that address:
    // first pass may violate; the predictor should tag the load and
    // avoid repeated flushes.
    Assembler a;
    a.la(s1, "buf");
    a.li(s0, 2000);
    a.label("loop");
    a.mul(t0, s0, s0);  // slow data AND slow address component
    a.andi(t1, t0, 0);  // t1 = 0, but depends on slow mul
    a.add(t2, s1, t1);  // store address depends on the mul
    a.sd(t0, t2, 0);
    a.ld(a1, s1, 0);    // same address, independent -> can run early
    a.add(a2, a2, a1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("buf");
    a.zero(8);
    SystemConfig cfg;
    System sys(cfg);
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    (void)r;
    // Violations happen but are bounded: tagging stops the bleeding.
    EXPECT_GE(sys.core().orderingViolations.value(), 1u);
    EXPECT_LT(sys.core().orderingViolations.value(), 100u);
    EXPECT_GT(sys.core().blockedLoads.value(), 1000u);
}

TEST(CoreTiming, SerializingCsrDrainsPipeline)
{
    Assembler a;
    a.li(s0, 500);
    a.label("loop");
    a.csrr(t0, 0xc00);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    SystemConfig cfg;
    System sys(cfg);
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_GE(sys.core().serializations.value(), 500u);
    // Serialized loops are slow: several cycles per iteration.
    EXPECT_GT(double(r.cycles) / 500.0, 3.0);
}

TEST(CoreTiming, DivOccupiesPipe)
{
    // Back-to-back independent divides are throughput-limited by the
    // unpipelined divider.
    Assembler a;
    a.li(a1, 97);
    a.li(a2, 7);
    for (int i = 0; i < 500; ++i)
        a.div(a3, a1, a2);
    a.ebreak();
    RunResult r = run(a);
    EXPECT_GT(double(r.cycles) / 500.0, 8.0);
}

TEST(CoreTiming, VectorWiderVlenFewerCycles)
{
    // The same 1024-element int32 vector-add with VLEN 128 vs 256:
    // wider VLEN halves the instruction count and cycles.
    auto build = [] {
        Assembler a;
        a.la(s0, "va");
        a.li(s3, 1024);
        a.label("loop");
        a.vsetvli(t0, s3, VType{.sew = 32, .lmul = 1});
        a.vle(v1, s0);
        a.vadd_vv(v2, v1, v1);
        a.vse(v2, s0);
        a.slli(t1, t0, 2);
        a.add(s0, s0, t1);
        a.sub(s3, s3, t0);
        a.bnez(s3, "loop");
        a.ebreak();
        a.align(64);
        a.label("va");
        a.zero(4096);
        return a;
    };
    SystemConfig narrow;
    narrow.core.vlenBits = 128;
    Assembler b1 = build();
    RunResult rn = run(b1, narrow);

    SystemConfig wide;
    wide.core.vlenBits = 256;
    Assembler b2 = build();
    RunResult rw = run(b2, wide);

    EXPECT_LT(rw.cycles, rn.cycles);
    EXPECT_LT(rw.insts, rn.insts);
}

TEST(CoreTiming, InOrderWidthOneSlowerThanTwo)
{
    auto build = [] {
        return loopKernel(3000, [](Assembler &k) {
            k.addi(a0, a0, 1);
            k.addi(a1, a1, 1);
            k.addi(a2, a2, 1);
            k.addi(a3, a3, 1);
        });
    };
    SystemConfig one;
    one.core = mcuClassParams();
    Assembler b1 = build();
    RunResult r1 = run(b1, one);

    SystemConfig two;
    two.core = u74ClassParams();
    Assembler b2 = build();
    RunResult r2 = run(b2, two);

    EXPECT_GT(r2.ipc(), r1.ipc() * 1.5);
    EXPECT_LE(r1.ipc(), 1.05);
}

TEST(CoreTiming, MulticoreSharedCounterRuns)
{
    Assembler a;
    a.la(a0, "counter");
    a.li(a1, 200);
    a.li(a2, 1);
    a.label("loop");
    a.amoadd_d(zero, a2, a0);
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    a.align(8);
    a.label("counter");
    a.dword(0);
    SystemConfig cfg;
    cfg.numCores = 4;
    System sys(cfg);
    Program p = a.assemble();
    sys.loadProgram(p);
    RunResult r = sys.run();
    EXPECT_EQ(sys.memory().read(p.symbol("counter"), 8), 800u);
    EXPECT_EQ(r.coreCycles.size(), 4u);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(r.coreCycles[c], 0u);
    // Coherence traffic happened on the shared line.
    EXPECT_GT(sys.memSystem().c2cTransfers.value() +
                  sys.memSystem().snoopProbes.value(),
              0u);
}

TEST(CoreTiming, PagedModeChargesWalks)
{
    // Identity-map the program + data with 4K pages and compare against
    // bare mode: paged must charge PTW walks.
    Assembler a;
    a.la(s1, "data");
    a.li(s0, 64);
    a.li(t5, 4096);
    a.label("loop");
    a.ld(t0, s1, 0);
    a.add(s1, s1, t5); // touch a fresh page each iteration
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("data");
    a.zero(8);
    Program p = a.assemble();

    // Tables are bump-allocated at a fixed base, so the root address is
    // deterministic: the root is the first 4 KiB table.
    const Addr tableBase = 0xc0000000;
    SystemConfig cfg;
    cfg.core.translation = TranslationMode::Paged;
    cfg.core.pageTableRoot = tableBase;
    System sys(cfg);
    PageTableBuilder ptb(sys.memory(), tableBase);
    Addr root = ptb.createRoot();
    ASSERT_EQ(root, tableBase);
    ptb.identityMap(root, p.base, 0x100000, PageSize::Page4K);
    ptb.identityMap(root, tableBase, 0x100000, PageSize::Page2M);
    sys.loadProgram(p);
    RunResult r = sys.run();
    (void)r;
    EXPECT_GT(sys.core().ptwWalks.value(), 32u);
    EXPECT_GT(sys.core().dtlbUnit().misses.value(), 32u);
}

TEST(CoreTiming, L0BtbReducesBubblesInJumpyCode)
{
    // A tight loop whose body is too large for the LBUF but contains a
    // taken jump every few instructions: L0 BTB should cut bubbles.
    auto build = [] {
        Assembler a;
        a.li(s0, 3000);
        a.label("loop");
        a.j("a1l");
        a.label("a1l");
        a.addi(a0, a0, 1);
        a.j("a2l");
        a.label("a2l");
        a.addi(a1, a1, 1);
        a.addi(s0, s0, -1);
        a.bnez(s0, "loop");
        a.ebreak();
        return a;
    };
    SystemConfig with;
    with.core.lbuf.enabled = false;
    Assembler b1 = build();
    RunResult rw = run(b1, with);
    System sWith(with);
    Assembler b3 = build();
    sWith.loadProgram(b3.assemble());
    RunResult rw2 = sWith.run();
    (void)rw;

    SystemConfig without;
    without.core.lbuf.enabled = false;
    without.core.btb.l0Enabled = false;
    System sWithout(without);
    Assembler b2 = build();
    sWithout.loadProgram(b2.assemble());
    RunResult rwo = sWithout.run();

    EXPECT_LE(rw2.cycles, rwo.cycles);
    EXPECT_GT(sWith.core().l0Redirects.value(), 0u);
    EXPECT_EQ(sWithout.core().l0Redirects.value(), 0u);
}

} // namespace xt910
