# Run-farm determinism, run as a ctest script:
#
#   cmake -DXT910_RUN=<path-to-xt910-run> -P determinism.cmake
#
# The worker count must be invisible in every deterministic output:
#  1. a fault campaign prints byte-identical reports at --jobs 1 and
#     --jobs 7 (same seed, same classification counts);
#  2. the multi-workload farm prints identical tables apart from the
#     host-MIPS column (the one intentionally non-deterministic field,
#     stripped before comparing).

if(NOT XT910_RUN)
    message(FATAL_ERROR "usage: cmake -DXT910_RUN=... -P determinism.cmake")
endif()

function(run_cli out_var)
    execute_process(
        COMMAND "${XT910_RUN}" ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "xt910-run ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# ---- campaign: fully deterministic stdout ------------------------------
run_cli(camp1 list --inject 30 --inject-seed 5 --jobs 1)
run_cli(camp7 list --inject 30 --inject-seed 5 --jobs 7)
if(NOT camp1 STREQUAL camp7)
    message(FATAL_ERROR "campaign output differs between --jobs 1 and --jobs 7:\n--- jobs=1\n${camp1}\n--- jobs=7\n${camp7}")
endif()
if(NOT camp1 MATCHES "fault-injection campaign: 30 runs")
    message(FATAL_ERROR "campaign report missing:\n${camp1}")
endif()

# ---- multi-workload farm: deterministic apart from host MIPS -----------
run_cli(farm1 --jobs 1 list state matrix)
run_cli(farm7 --jobs 7 list state matrix)
# Strip the MIPS column (a float directly before the checksum column).
string(REGEX REPLACE "[ ]+[0-9]+\\.[0-9]+([ ]+(ok|MISMATCH))" "\\1"
    farm1_stripped "${farm1}")
string(REGEX REPLACE "[ ]+[0-9]+\\.[0-9]+([ ]+(ok|MISMATCH))" "\\1"
    farm7_stripped "${farm7}")
if(NOT farm1_stripped STREQUAL farm7_stripped)
    message(FATAL_ERROR "farm output differs between --jobs 1 and --jobs 7:\n--- jobs=1\n${farm1}\n--- jobs=7\n${farm7}")
endif()
foreach(w IN ITEMS list state matrix)
    if(NOT farm1_stripped MATCHES "${w} .*ok")
        message(FATAL_ERROR "workload ${w} missing or failed:\n${farm1}")
    endif()
endforeach()

message(STATUS "determinism ok: campaign and farm outputs identical across job counts")
