# Sampled-simulation speed/accuracy smoke, run as a ctest script:
#
#   cmake -DXT910_RUN=<path-to-xt910-run> -DWORK_DIR=<dir> \
#       -P sample_smoke.cmake
#
# Runs crc (homogeneous, so a handful of intervals extrapolates
# accurately) at a scale where full detailed timing takes seconds, then
# in sampled mode, and asserts the two contract properties:
#   1. the sampled run is >= 3x faster end-to-end than full detailed
#      timing (both timings self-reported by xt910-run on the same
#      machine, so the ratio is host-speed independent);
#   2. the extrapolated cycle estimate is within 2% of the full run's
#      true cycle count (measured ~0.1%; the bound leaves room for
#      interval-placement drift if the workload changes).
# Thresholds have margin over measured values (4.0x, 0.09%) so the test
# guards the mechanism, not one machine's exact timings. The speed
# floor was 5x (measured 5.7x) before the block-batched consume work
# (DESIGN.md §3h) took full detailed timing from ~9 to ~13+ MIPS: the
# sampled run is fast-forward-bound (~67 MIPS functional), so a faster
# detailed denominator mechanically shrinks the end-to-end ratio. The
# sampling machinery itself did not regress — the absolute sampled
# time is unchanged.

if(NOT XT910_RUN OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DXT910_RUN=... -DWORK_DIR=... -P sample_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

# ---- full detailed run -------------------------------------------------
execute_process(
    COMMAND "${XT910_RUN}" crc --scale 64
    OUTPUT_VARIABLE full_out
    ERROR_VARIABLE full_err
    RESULT_VARIABLE full_rc)
if(NOT full_rc EQUAL 0)
    message(FATAL_ERROR "full detailed run failed (rc=${full_rc}):\n${full_out}\n${full_err}")
endif()
if(NOT full_out MATCHES "insts      : ([0-9]+)")
    message(FATAL_ERROR "no instruction count in full run output:\n${full_out}")
endif()
set(full_insts ${CMAKE_MATCH_1})
if(NOT full_out MATCHES "cycles     : ([0-9]+)")
    message(FATAL_ERROR "no cycle count in full run output:\n${full_out}")
endif()
set(full_cycles ${CMAKE_MATCH_1})
if(NOT full_out MATCHES "sim speed  : ([0-9.]+) MIPS")
    message(FATAL_ERROR "no sim speed in full run output:\n${full_out}")
endif()
set(full_mips ${CMAKE_MATCH_1})

# ---- sampled run -------------------------------------------------------
execute_process(
    COMMAND "${XT910_RUN}" crc --scale 64
        --sample-interval 200000 --sample-count 8 --sample-warmup 10000
        --stats-json ${WORK_DIR}/sample.json
    OUTPUT_VARIABLE samp_out
    ERROR_VARIABLE samp_err
    RESULT_VARIABLE samp_rc)
if(NOT samp_rc EQUAL 0)
    message(FATAL_ERROR "sampled run failed (rc=${samp_rc}):\n${samp_out}\n${samp_err}")
endif()
if(NOT samp_out MATCHES "host time  : ([0-9.]+) s")
    message(FATAL_ERROR "no host time in sampled output:\n${samp_out}")
endif()
set(samp_secs ${CMAKE_MATCH_1})
if(NOT samp_out MATCHES "est cycles : ([0-9]+)")
    message(FATAL_ERROR "no cycle estimate in sampled output:\n${samp_out}")
endif()
set(est_cycles ${CMAKE_MATCH_1})
if(NOT samp_out MATCHES "checksum   : ok")
    message(FATAL_ERROR "sampled run checksum not ok:\n${samp_out}")
endif()

# The stats JSON must agree with stdout and carry the error bar.
file(READ "${WORK_DIR}/sample.json" doc)
string(JSON json_est ERROR_VARIABLE jerr GET "${doc}" estimate est_cycles)
if(jerr)
    message(FATAL_ERROR "unparseable sample.json (${jerr})")
endif()
if(NOT json_est EQUAL est_cycles)
    message(FATAL_ERROR "est_cycles mismatch: stdout ${est_cycles} vs json ${json_est}")
endif()
string(JSON cpi_ci GET "${doc}" estimate cpi 1)

# ---- assertions (integer math: cmake's math() has no floats) -----------
# Full-run host time comes from its self-reported speed:
#   full_us = insts / MIPS   (since MIPS = insts per microsecond)
# computed with MIPS scaled x100; the sampled run's "host time" line is
# parsed to microseconds directly. Both are self-timed by xt910-run.
string(REGEX MATCH "^([0-9]+)\\.?([0-9]?[0-9]?)" _ "${full_mips}")
set(mips_int ${CMAKE_MATCH_1})
set(mips_frac "${CMAKE_MATCH_2}00")
string(SUBSTRING "${mips_frac}" 0 2 mips_frac)
math(EXPR mips_x100 "${mips_int} * 100 + ${mips_frac}")
math(EXPR full_us "${full_insts} * 100 / ${mips_x100}")
string(REGEX MATCH "^([0-9]+)\\.?([0-9]?[0-9]?[0-9]?)" _ "${samp_secs}")
set(ss_int ${CMAKE_MATCH_1})
set(ss_frac "${CMAKE_MATCH_2}000")
string(SUBSTRING "${ss_frac}" 0 3 ss_frac)
math(EXPR samp_us "(${ss_int} * 1000 + ${ss_frac}) * 1000")
math(EXPR speedup_x10 "${full_us} * 10 / ${samp_us}")
if(speedup_x10 LESS 30)
    math(EXPR spd_i "${speedup_x10} / 10")
    math(EXPR spd_f "${speedup_x10} % 10")
    message(FATAL_ERROR "sampled run only ${spd_i}.${spd_f}x faster than full detailed (need >= 3x): full ~${full_us}us vs sampled ${samp_us}us")
endif()

# |est - true| / true <= 2%
if(est_cycles GREATER full_cycles)
    math(EXPR diff "${est_cycles} - ${full_cycles}")
else()
    math(EXPR diff "${full_cycles} - ${est_cycles}")
endif()
math(EXPR err_x10000 "${diff} * 10000 / ${full_cycles}")
if(err_x10000 GREATER 200)
    message(FATAL_ERROR "cycle estimate off by ${err_x10000}e-4 relative (bound 200e-4 = 2%): est ${est_cycles} vs true ${full_cycles}")
endif()

math(EXPR spd_i "${speedup_x10} / 10")
math(EXPR spd_f "${speedup_x10} % 10")
message(STATUS "sample smoke ok: ${spd_i}.${spd_f}x faster, "
    "cycle error ${err_x10000}e-4 (est ${est_cycles} vs ${full_cycles}, "
    "cpi ci95 ${cpi_ci})")
