# Block-consume fast-path smoke, run as a ctest script:
#
#   cmake -DXT910_RUN=<path-to-xt910-run> -P consume_smoke.cmake
#
# Runs `xt910-run --profile-hot` on the scalar (coremark-like)
# workloads and asserts the simple-slot fast path actually engages:
# hit rate >= 80% on each. The fast path only fires for single-µop,
# non-memory, non-serializing records (DESIGN.md §3h), so a drop below
# the floor means either the µop-plan flags regressed (ops wrongly
# classified as slow) or the span dispatch stopped engaging — both
# silent performance losses that no correctness test would catch.
# `list` is intentionally absent: its load-heavy mix sits in the 60%s
# by instruction-stream construction, not by fast-path health.
#
# Hit rates are deterministic (instruction-stream properties, not
# host timing), so unlike the MIPS canaries this floor is noise-free.

if(NOT XT910_RUN)
    message(FATAL_ERROR "usage: cmake -DXT910_RUN=... -P consume_smoke.cmake")
endif()

foreach(wl IN ITEMS crc matrix state)
    execute_process(
        COMMAND "${XT910_RUN}" --profile-hot ${wl}
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err
        RESULT_VARIABLE run_rc)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR "xt910-run ${wl} failed (rc=${run_rc}):\n${run_out}\n${run_err}")
    endif()
    set(all_out "${run_out}\n${run_err}")
    if(NOT all_out MATCHES "simple-slot ([0-9]+)/([0-9]+) \\(hit rate ([0-9.]+)%\\)")
        message(FATAL_ERROR "no block-consume hit-rate report for ${wl}:\n${all_out}")
    endif()
    set(hits ${CMAKE_MATCH_1})
    set(total ${CMAKE_MATCH_2})
    set(rate ${CMAKE_MATCH_3})
    if(NOT total GREATER 0)
        message(FATAL_ERROR "${wl}: no consumed records (${total})")
    endif()
    if(rate LESS 80.0)
        message(FATAL_ERROR "simple-slot hit rate collapsed on ${wl}: "
            "${hits}/${total} = ${rate}% (< 80%) — µop-plan kSimple "
            "classification or span dispatch regressed? See DESIGN.md §3h.")
    endif()
    message(STATUS "consume smoke ok: ${wl} ${hits}/${total} (${rate}%)")
endforeach()
