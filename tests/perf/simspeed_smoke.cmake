# Sim-speed smoke, run as a ctest script:
#
#   cmake -DBENCH_SIMSPEED=<path-to-bench_simspeed> -DWORK_DIR=<dir> \
#       -P simspeed_smoke.cmake
#
# Runs the sim-speed bench in its fast functional-only mode on one
# small workload and validates BENCH_simspeed.json: it parses, MIPS is
# reported and nonzero for both decode paths, and the speedup fields
# are present. No performance threshold is asserted — machine speed is
# not a correctness property; the JSON is for tracking.

if(NOT BENCH_SIMSPEED OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DBENCH_SIMSPEED=... -DWORK_DIR=... -P simspeed_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(JSON_OUT "${WORK_DIR}/BENCH_simspeed.json")

execute_process(
    COMMAND "${BENCH_SIMSPEED}" --iss-only --reps=1 --out=${JSON_OUT} list
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "bench_simspeed failed (rc=${run_rc}):\n${run_out}\n${run_err}")
endif()
if(NOT run_out MATCHES "geomean iss block/legacy speedup")
    message(FATAL_ERROR "speedup summary missing:\n${run_out}")
endif()

file(READ "${JSON_OUT}" doc)
string(JSON nwl ERROR_VARIABLE jerr LENGTH "${doc}" workloads)
if(jerr)
    message(FATAL_ERROR "unparseable ${JSON_OUT} (${jerr})")
endif()
if(nwl LESS 1)
    message(FATAL_ERROR "no workloads in ${JSON_OUT}")
endif()

string(JSON name GET "${doc}" workloads 0 name)
string(JSON insts GET "${doc}" workloads 0 insts)
string(JSON block_mips GET "${doc}" workloads 0 iss block_mips)
string(JSON legacy_mips GET "${doc}" workloads 0 iss legacy_mips)
string(JSON speedup GET "${doc}" workloads 0 iss speedup)
string(JSON geomean GET "${doc}" geomean_iss_speedup)

if(NOT insts GREATER 0)
    message(FATAL_ERROR "workload ${name}: insts not positive (${insts})")
endif()
foreach(v IN ITEMS block_mips legacy_mips speedup geomean)
    if(NOT ${v} GREATER 0)
        message(FATAL_ERROR "workload ${name}: ${v} not positive (${${v}})")
    endif()
endforeach()

message(STATUS "simspeed smoke ok: ${name} ${insts} insts, "
    "block ${block_mips} MIPS, legacy ${legacy_mips} MIPS, "
    "speedup ${speedup}x (geomean ${geomean}x)")
