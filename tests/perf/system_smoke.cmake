# System-mode sim-speed smoke, run as a ctest script:
#
#   cmake -DBENCH_SIMSPEED=<path-to-bench_simspeed> -DWORK_DIR=<dir> \
#       -P system_smoke.cmake
#
# Runs the sim-speed bench in full System (timing) mode on crc — the
# workload whose tight store loop made the old tick-every-cycle
# bandwidth limiters quadratic (0.15 MIPS before the event-skip
# schedulers; ~8 MIPS after, see EXPERIMENTS.md) — and validates the
# JSON plus a deliberately loose throughput floor.
#
# Unlike simspeed_smoke (which asserts no threshold), this test IS a
# performance canary: it fails only on an order-of-magnitude collapse
# (block-path system MIPS under 2.0, roughly 5x below current numbers
# on a mid-range host — crc runs ~10-15 MIPS with the block-batched
# consume hand-off — but >10x above the pre-event-skip scheduler),
# i.e. someone reintroduced a per-cycle walk on the hot path or broke
# the §3h span dispatch. Host noise and slow CI machines stay well
# clear of the floor.

if(NOT BENCH_SIMSPEED OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DBENCH_SIMSPEED=... -DWORK_DIR=... -P system_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(JSON_OUT "${WORK_DIR}/BENCH_simspeed.json")

execute_process(
    COMMAND "${BENCH_SIMSPEED}" --reps=1 --out=${JSON_OUT} crc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "bench_simspeed failed (rc=${run_rc}):\n${run_out}\n${run_err}")
endif()
if(NOT run_out MATCHES "geomean system-mode MIPS")
    message(FATAL_ERROR "system-mode summary missing:\n${run_out}")
endif()

file(READ "${JSON_OUT}" doc)
string(JSON name ERROR_VARIABLE jerr GET "${doc}" workloads 0 name)
if(jerr)
    message(FATAL_ERROR "unparseable ${JSON_OUT} (${jerr})")
endif()
string(JSON insts GET "${doc}" workloads 0 insts)
string(JSON block_mips GET "${doc}" workloads 0 system block_mips)
string(JSON legacy_mips GET "${doc}" workloads 0 system legacy_mips)
string(JSON geomean GET "${doc}" geomean_system_block_mips)

if(NOT insts GREATER 0)
    message(FATAL_ERROR "workload ${name}: insts not positive (${insts})")
endif()
foreach(v IN ITEMS block_mips legacy_mips geomean)
    if(NOT ${v} GREATER 0)
        message(FATAL_ERROR "workload ${name}: ${v} not positive (${${v}})")
    endif()
endforeach()

# The order-of-magnitude canary (see header comment).
if(block_mips LESS 2.0)
    message(FATAL_ERROR "system-mode throughput collapsed: ${name} at "
        "${block_mips} MIPS (< 2.0) — a per-cycle walk is back on the "
        "hot path, or the block-consume span dispatch stopped "
        "engaging? See DESIGN.md §3f/§3h / EXPERIMENTS.md.")
endif()

message(STATUS "system smoke ok: ${name} ${insts} insts, "
    "system block ${block_mips} MIPS, legacy ${legacy_mips} MIPS "
    "(geomean ${geomean})")
