/**
 * Functional validation of every workload: each kernel runs on the ISS
 * and its stored checksum must equal the host-side C++ reference, in
 * both code-generation flavours. This pins the ISA semantics of every
 * instruction the benchmarks exercise.
 */

#include <gtest/gtest.h>

#include "func/iss.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{

namespace
{

struct Flavour
{
    std::string name;
    bool extended;
};

struct Case
{
    Workload w;
    Flavour f;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const Workload &w : allWorkloads()) {
        cases.push_back({w, {"native", false}});
        // The extended flavour only differs for scalar kernels, but
        // running both everywhere is cheap and catches regressions.
        cases.push_back({w, {"extended", true}});
    }
    return cases;
}

} // namespace

class WorkloadFunctional : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadFunctional, ChecksumMatchesHostReference)
{
    const Case &c = GetParam();
    WorkloadOptions opts;
    opts.extended = c.f.extended;
    opts.scale = 1;
    opts.streamBytes = 64 * 1024; // keep functional runs quick
    WorkloadBuild b = c.w.build(opts);

    Memory mem;
    Iss iss(mem);
    iss.loadProgram(b.program);
    uint64_t n = iss.run(400'000'000);
    ASSERT_TRUE(iss.halted()) << c.w.name << " did not halt after " << n;
    EXPECT_EQ(wl::readResult(mem, b.program), b.expected)
        << c.w.name << " (" << c.f.name << ")";
    EXPECT_GT(b.workItems, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadFunctional, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        return info.param.w.name + "_" + info.param.f.name;
    });

TEST(WorkloadRegistry, SuitesComplete)
{
    EXPECT_EQ(workloadsInSuite("coremark").size(), 4u);
    EXPECT_EQ(workloadsInSuite("eembc").size(), 10u);
    EXPECT_EQ(workloadsInSuite("nbench").size(), 10u);
    EXPECT_EQ(workloadsInSuite("stream").size(), 4u);
    EXPECT_EQ(workloadsInSuite("spec").size(), 1u);
    EXPECT_EQ(workloadsInSuite("ai").size(), 3u);
    EXPECT_EQ(allWorkloads().size(), 32u);
}

TEST(WorkloadRegistry, FindByName)
{
    EXPECT_EQ(findWorkload("crc").suite, "coremark");
    EXPECT_THROW(findWorkload("nope"), std::runtime_error);
}

TEST(WorkloadCodegen, ExtendedUsesFewerDynamicInstructions)
{
    // Fig. 20's premise: the extended flavour executes fewer
    // instructions on kernels with address-generation/MAC hot loops.
    for (const char *name : {"matrix", "crc", "mac_scalar", "iirflt"}) {
        WorkloadOptions native, ext;
        ext.extended = true;
        WorkloadBuild bn = findWorkload(name).build(native);
        WorkloadBuild be = findWorkload(name).build(ext);
        Memory m1, m2;
        Iss i1(m1), i2(m2);
        i1.loadProgram(bn.program);
        i2.loadProgram(be.program);
        i1.run(200'000'000);
        i2.run(200'000'000);
        EXPECT_LT(i2.hart(0).instret, i1.hart(0).instret) << name;
    }
}

TEST(WorkloadCodegen, VectorMacExecutesFarFewerInstructions)
{
    WorkloadOptions o;
    WorkloadBuild scalar = findWorkload("mac_scalar").build(o);
    WorkloadBuild vec = findWorkload("mac_vector").build(o);
    Memory m1, m2;
    Iss i1(m1), i2(m2);
    i1.loadProgram(scalar.program);
    i2.loadProgram(vec.program);
    i1.run(200'000'000);
    i2.run(200'000'000);
    ASSERT_TRUE(i1.halted() && i2.halted());
    // 8 elements per vector instruction: > 3x dynamic-count reduction.
    EXPECT_LT(i2.hart(0).instret * 3, i1.hart(0).instret);
}

} // namespace xt910
