/**
 * PLIC-lite tests, including the XT-910 permission-control extension
 * on interrupt sources (§II).
 */

#include <gtest/gtest.h>

#include "uncore/plic.h"

namespace xt910
{

TEST(Plic, ClaimHighestPriority)
{
    Plic plic(4, 1);
    plic.setPriority(1, 3);
    plic.setPriority(2, 7);
    plic.setPriority(3, 5);
    for (unsigned s = 1; s <= 3; ++s) {
        plic.setEnabled(0, s, true);
        plic.setPending(s, true);
    }
    EXPECT_TRUE(plic.pendingFor(0, PrivMode::Machine));
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 2u); // prio 7 wins
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 3u); // then 5
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 1u);
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 0u); // drained
}

TEST(Plic, ThresholdMasksLowPriority)
{
    Plic plic(2, 1);
    plic.setPriority(1, 2);
    plic.setPriority(2, 6);
    plic.setEnabled(0, 1, true);
    plic.setEnabled(0, 2, true);
    plic.setPending(1, true);
    plic.setPending(2, true);
    plic.setThreshold(0, 4);
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 2u);
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 0u); // 1 below threshold
}

TEST(Plic, ActiveSourceNotReclaimedUntilComplete)
{
    Plic plic(1, 1);
    plic.setPriority(1, 1);
    plic.setEnabled(0, 1, true);
    plic.setPending(1, true);
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 1u);
    plic.setPending(1, true); // device re-raises while in handler
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 0u);
    plic.complete(0, 1);
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 1u);
}

TEST(Plic, DisabledOrZeroPriorityNotDelivered)
{
    Plic plic(2, 2);
    plic.setPriority(1, 0); // zero priority disables
    plic.setPriority(2, 5);
    plic.setEnabled(0, 1, true);
    plic.setPending(1, true);
    plic.setPending(2, true); // enabled for nobody
    EXPECT_FALSE(plic.pendingFor(0, PrivMode::Machine));
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 0u);
    // Context 1 has source 2 enabled.
    plic.setEnabled(1, 2, true);
    EXPECT_EQ(plic.claim(1, PrivMode::Machine), 2u);
}

TEST(Plic, PermissionExtensionFiltersLowPrivilege)
{
    // §II: the XT-910 interrupt-controller extension adds permission
    // control — a source restricted to S-mode is invisible to U-mode.
    Plic plic(1, 1);
    plic.setPriority(1, 5);
    plic.setEnabled(0, 1, true);
    plic.setMinPrivilege(1, PrivMode::Supervisor);
    plic.setPending(1, true);
    EXPECT_FALSE(plic.pendingFor(0, PrivMode::User));
    EXPECT_EQ(plic.claim(0, PrivMode::User), 0u);
    EXPECT_GE(plic.permissionFiltered.value(), 1u);
    // Supervisor and machine can claim it.
    EXPECT_EQ(plic.claim(0, PrivMode::Supervisor), 1u);
    plic.complete(0, 1);
    plic.setPending(1, true);
    EXPECT_EQ(plic.claim(0, PrivMode::Machine), 1u);
}

} // namespace xt910
