/**
 * Uncore, preset and PPA-model tests: Table I topology validation, the
 * §V.E TLB-shootdown comparison, Table II calibration and parameter
 * sensitivity, and the comparison-core presets.
 */

#include <gtest/gtest.h>

#include "baseline/presets.h"
#include "power/ppa.h"
#include "uncore/cluster.h"

namespace xt910
{

TEST(Topology, TableIConfigurationsValid)
{
    for (const ClusterTopology &t : supportedTopologies())
        EXPECT_EQ(t.validate(), "") << t.coresPerCluster << "x"
                                    << t.clusters;
    EXPECT_FALSE(supportedTopologies().empty());
}

TEST(Topology, RejectsUnsupported)
{
    ClusterTopology t;
    t.coresPerCluster = 3;
    EXPECT_NE(t.validate(), "");
    t = ClusterTopology{};
    t.clusters = 5;
    EXPECT_NE(t.validate(), "");
    t = ClusterTopology{};
    t.l1dBytes = 128 * 1024;
    EXPECT_NE(t.validate(), "");
    t = ClusterTopology{};
    t.l2Bytes = 16 * 1024 * 1024;
    EXPECT_NE(t.validate(), "");
    t = ClusterTopology{};
    EXPECT_EQ(t.validate(), "");
}

TEST(Topology, SixteenCoreMax)
{
    ClusterTopology t;
    t.coresPerCluster = 4;
    t.clusters = 4;
    EXPECT_EQ(t.validate(), "");
    EXPECT_EQ(t.totalCores(), 16u); // the paper's 16-core configuration
}

TEST(Shootdown, HardwareBroadcastMuchCheaperThanIpi)
{
    ClusterTopology t;
    t.coresPerCluster = 4;
    t.clusters = 2;
    ShootdownParams p;
    TlbParams tp;
    Tlb t1(tp, "t1"), t2(tp, "t2");
    t1.insert(0x5000, 0x9000, PageSize::Page4K, 1);
    t2.insert(0x5000, 0xa000, PageSize::Page4K, 1);
    std::vector<Tlb *> remotes{&t1, &t2};

    Cycle hw = tlbShootdown(t, ShootdownScheme::HardwareBroadcast, p,
                            0x5000, remotes);
    // Both remote TLBs lost the translation.
    EXPECT_FALSE(t1.lookup(0x5000, 1, 0).has_value());
    EXPECT_FALSE(t2.lookup(0x5000, 1, 0).has_value());

    Cycle ipi = tlbShootdown(t, ShootdownScheme::Ipi, p, 0x5000, remotes);
    EXPECT_GT(ipi, hw * 5); // hardware scheme is far cheaper (§V.E)
}

TEST(Shootdown, SingleCoreIsFree)
{
    ClusterTopology t;
    t.coresPerCluster = 1;
    t.clusters = 1;
    ShootdownParams p;
    std::vector<Tlb *> none;
    EXPECT_EQ(tlbShootdown(t, ShootdownScheme::Ipi, p, 0x1000, none), 0u);
}

TEST(Ppa, TableIICalibration)
{
    // Table II: 0.8 / 0.6 mm^2 with/without VEC (excl. L2), 2.0-2.5
    // GHz, ~100 uW/MHz per core.
    CoreParams c;
    MemSystemParams m;
    m.l1i.sizeBytes = m.l1d.sizeBytes = 64 * 1024;
    m.l2.sizeBytes = 512 * 1024;
    PpaResult withVec = estimatePpa(c, m);
    CoreParams nv = c;
    nv.vecBitsPerCycle = 0;
    PpaResult noVec = estimatePpa(nv, m);

    EXPECT_NEAR(withVec.coreAreaMm2, 0.8, 0.08);
    EXPECT_NEAR(noVec.coreAreaMm2, 0.6, 0.06);
    EXPECT_NEAR(withVec.freqGHz, 2.0, 0.1);
    PpaResult boost = estimatePpa(c, m, TechNode::Tsmc12,
                                  OperatingPoint::Ulvt1v0);
    EXPECT_NEAR(boost.freqGHz, 2.5, 0.1);
    EXPECT_NEAR(noVec.dynUwPerMhz, 100.0, 15.0);
}

TEST(Ppa, SevenNanometerExperiment)
{
    // §II: "with a 7nm FinFET technology, the frequency of a single
    // core can reach 2.8 GHz" — and the area shrinks.
    CoreParams c;
    MemSystemParams m;
    PpaResult n12 = estimatePpa(c, m);
    PpaResult n7 = estimatePpa(c, m, TechNode::Tsmc7);
    EXPECT_NEAR(n7.freqGHz, 2.8, 0.1);
    EXPECT_LT(n7.coreAreaMm2, n12.coreAreaMm2);
    EXPECT_LT(n7.dynUwPerMhz, n12.dynUwPerMhz);
}

TEST(Ppa, ParameterSensitivity)
{
    CoreParams c;
    MemSystemParams m;
    PpaResult base = estimatePpa(c, m);

    CoreParams bigRob = c;
    bigRob.robEntries = 384;
    EXPECT_GT(estimatePpa(bigRob, m).coreAreaMm2, base.coreAreaMm2);
    EXPECT_LT(estimatePpa(bigRob, m).freqGHz, base.freqGHz + 1e-9);

    MemSystemParams bigL1 = m;
    bigL1.l1d.sizeBytes = 128 * 1024;
    EXPECT_GT(estimatePpa(c, bigL1).coreAreaMm2, base.coreAreaMm2);

    MemSystemParams bigL2 = m;
    bigL2.l2.sizeBytes = 8 * 1024 * 1024;
    EXPECT_GT(estimatePpa(c, bigL2).l2AreaMm2, base.l2AreaMm2);

    // Narrower machine is smaller and lower power.
    CoreParams narrow = u74ClassParams();
    PpaResult u74 = estimatePpa(narrow, m);
    EXPECT_LT(u74.coreAreaMm2, base.coreAreaMm2);
    EXPECT_LT(u74.dynUwPerMhz, base.dynUwPerMhz);
}

TEST(Presets, AllConstructAndRun)
{
    for (const CorePreset &p : allPresets()) {
        Assembler a;
        using namespace reg;
        a.li(a0, 21);
        a.add(a0, a0, a0);
        a.ebreak();
        System sys(p.config);
        sys.loadProgram(a.assemble());
        RunResult r = sys.run();
        EXPECT_GT(r.cycles, 0u) << p.name;
        EXPECT_EQ(sys.iss().hart(0).x[10], 42u) << p.name;
        EXPECT_GT(p.freqGHz, 0.0);
    }
}

TEST(Presets, Ordering)
{
    auto ps = allPresets();
    ASSERT_EQ(ps.size(), 4u);
    EXPECT_EQ(ps.front().name, "mcu-class");
    EXPECT_EQ(ps.back().name, "xt910");
    EXPECT_FALSE(xt910NoVecPreset().hasVector);
    EXPECT_TRUE(xt910Preset().hasVector);
}

} // namespace xt910
