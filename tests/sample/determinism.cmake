# Sampled-simulation determinism, run as a ctest script:
#
#   cmake -DXT910_RUN=<path-to-xt910-run> -DWORK_DIR=<dir> \
#       -P determinism.cmake
#
# The extrapolated stats must be bitwise-identical at any --jobs count:
# interval measurements land in per-interval slots and are merged in
# interval order, so the worker count must be invisible in the
# --stats-json document (which carries no host timings). Checked for
# both evenly-spaced (seed 0) and seeded-random interval selection.

if(NOT XT910_RUN OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DXT910_RUN=... -DWORK_DIR=... -P determinism.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_sampled out_file jobs seed)
    execute_process(
        COMMAND "${XT910_RUN}" crc --scale 4
            --sample-interval 100000 --sample-count 4
            --sample-warmup 10000 --sample-seed ${seed}
            --stats-json ${out_file} --jobs ${jobs}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sampled run (jobs=${jobs} seed=${seed}) failed (rc=${rc}):\n${out}\n${err}")
    endif()
    if(NOT out MATCHES "checksum   : ok")
        message(FATAL_ERROR "sampled run (jobs=${jobs} seed=${seed}) checksum not ok:\n${out}")
    endif()
endfunction()

foreach(seed IN ITEMS 0 12345)
    run_sampled("${WORK_DIR}/j1_s${seed}.json" 1 ${seed})
    run_sampled("${WORK_DIR}/j5_s${seed}.json" 5 ${seed})
    file(READ "${WORK_DIR}/j1_s${seed}.json" doc1)
    file(READ "${WORK_DIR}/j5_s${seed}.json" doc5)
    if(NOT doc1 STREQUAL doc5)
        message(FATAL_ERROR "sampled stats differ between --jobs 1 and --jobs 5 (seed ${seed}):\n--- jobs=1\n${doc1}\n--- jobs=5\n${doc5}")
    endif()
    # Sanity: the document is parseable and measured what was asked.
    string(JSON measured ERROR_VARIABLE jerr GET "${doc1}" run measured)
    if(jerr)
        message(FATAL_ERROR "unparseable sampled stats (${jerr}):\n${doc1}")
    endif()
    if(NOT measured EQUAL 4)
        message(FATAL_ERROR "expected 4 measured intervals, got ${measured} (seed ${seed})")
    endif()
endforeach()

message(STATUS "sample determinism ok: stats bitwise-identical across job counts (seeds 0 and 12345)")
