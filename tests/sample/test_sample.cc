/**
 * Sampled-simulation tests (src/sample): fast-forward snapshot capture
 * (adaptive stride, warm-up-aware positions), the clean-restore
 * contract for timing state re-created from a functional checkpoint,
 * restore-vs-straight-through cycle equality, bitwise determinism of
 * the extrapolated report across worker counts, the accuracy of the
 * extrapolation at full coverage, and the cooperative abort hook.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/presets.h"
#include "core/system.h"
#include "sample/sample.h"
#include "snap/snapshot.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{
namespace sample
{

namespace
{

SystemConfig
testConfig()
{
    SystemConfig cfg = xt910Preset().config;
    cfg.numCores = 1;
    return cfg;
}

WorkloadBuild
crcBuild()
{
    WorkloadOptions wo;
    return findWorkload("crc").build(wo);
}

SampleHooks
checkedHooks(const WorkloadBuild &wb)
{
    SampleHooks hooks;
    hooks.checkResult = [&wb](System &s) {
        return wl::readResult(s.memory(), wb.program) == wb.expected;
    };
    return hooks;
}

} // namespace

TEST(Sample, ValidateRejectsBadConfigs)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 0;
    EXPECT_THROW(fastForward(testConfig(), wb.program, sc),
                 SampleError);

    sc.interval = 10000;
    SystemConfig multi = testConfig();
    multi.numCores = 2;
    EXPECT_THROW(fastForward(multi, wb.program, sc), SampleError);

    sc.maxStored = 1;
    EXPECT_THROW(fastForward(testConfig(), wb.program, sc),
                 SampleError);
}

TEST(Sample, FastForwardCapturesWarmupAwareBoundaries)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 50000;
    sc.warmup = 10000;
    FastForwardResult ff =
        fastForward(testConfig(), wb.program, sc, checkedHooks(wb));

    EXPECT_TRUE(ff.halted);
    EXPECT_TRUE(ff.checksumOk);
    EXPECT_GT(ff.totalInsts, sc.interval);
    ASSERT_FALSE(ff.snaps.empty());

    // Every snapshot sits `warmup` instructions before its boundary
    // (clamped to 0), strictly inside the run.
    for (const CapturedInterval &s : ff.snaps) {
        const uint64_t b = s.index * sc.interval;
        const uint64_t w = b < sc.warmup ? b : sc.warmup;
        EXPECT_EQ(s.captureAt, b - w) << "interval " << s.index;
        EXPECT_LT(b, ff.totalInsts) << "interval " << s.index;
        EXPECT_FALSE(s.bytes.empty());
    }
    // Interval 0 exists and its snapshot is the program entry state.
    EXPECT_EQ(ff.snaps.front().index, 0u);
    EXPECT_EQ(ff.snaps.front().captureAt, 0u);
}

TEST(Sample, FastForwardThinsToAnEvenStride)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 10000;   // crc retires ~540k insts -> ~54 boundaries
    sc.maxStored = 8;      // force repeated stride doubling
    FastForwardResult ff =
        fastForward(testConfig(), wb.program, sc);

    ASSERT_GE(ff.snaps.size(), 2u);
    EXPECT_LE(ff.snaps.size(), 8u + 1);
    // Retained indices form an arithmetic sequence from 0: the sample
    // frame stays evenly spaced over the whole run.
    const uint64_t stride = ff.snaps[1].index - ff.snaps[0].index;
    EXPECT_EQ(ff.snaps[0].index, 0u);
    for (size_t i = 1; i < ff.snaps.size(); ++i)
        EXPECT_EQ(ff.snaps[i].index - ff.snaps[i - 1].index, stride)
            << "at " << i;
}

/** The satellite contract: a System re-created from a functional
 *  fast-forward checkpoint starts its timing model *clean* — zero
 *  cycles, zero top-down slots, zero miss counters — because the ISS
 *  never touched any of them. (Warm-up exists precisely to heal this
 *  cold state before measurement.) */
TEST(Sample, RestoreFromFastForwardSnapshotStartsTimingClean)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 50000;
    FastForwardResult ff =
        fastForward(testConfig(), wb.program, sc);
    ASSERT_GT(ff.snaps.size(), 2u);
    const CapturedInterval &mid = ff.snaps[ff.snaps.size() / 2];
    ASSERT_GT(mid.captureAt, 0u);

    System sys(testConfig());
    snap::restoreSnapshotBytes(sys, mid.bytes.data(),
                               mid.bytes.size());

    XtCore &core = sys.core(0);
    EXPECT_EQ(core.cycles(), 0u);
    EXPECT_EQ(core.topdown.retiring.value(), 0u);
    EXPECT_EQ(core.topdown.frontendBound.value(), 0u);
    EXPECT_EQ(core.topdown.badSpeculation.value(), 0u);
    EXPECT_EQ(core.topdown.backendMem.value(), 0u);
    EXPECT_EQ(core.topdown.backendCore.value(), 0u);
    EXPECT_EQ(core.branchMispredicts.value(), 0u);
    MemSystem &ms = sys.memSystem();
    EXPECT_EQ(ms.l1d(0).misses.value(), 0u);
    EXPECT_EQ(ms.l1i(0).misses.value(), 0u);

    // And the restored guest still finishes the workload correctly:
    // the architectural state at the capture point was exact.
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_EQ(wl::readResult(sys.memory(), wb.program), wb.expected);
}

/** Interval 0's snapshot is the entry state, so measuring it must
 *  reproduce a straight-through detailed run of the same length
 *  cycle for cycle — restore is not allowed to perturb timing. */
TEST(Sample, FirstIntervalMatchesStraightThroughRun)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 50000;
    FastForwardResult ff =
        fastForward(testConfig(), wb.program, sc);
    ASSERT_FALSE(ff.snaps.empty());
    ASSERT_EQ(ff.snaps.front().index, 0u);

    IntervalRecord rec = measureInterval(
        testConfig(), ff.snaps.front(), sc, ff.totalInsts);
    EXPECT_EQ(rec.warmupInsts, 0u);
    EXPECT_EQ(rec.measuredInsts, sc.interval);

    SystemConfig straight = testConfig();
    straight.maxInsts = sc.interval;
    straight.quietInstLimit = true;
    System sys(straight);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    ASSERT_EQ(r.insts, sc.interval);
    EXPECT_EQ(rec.cycles, r.cycles);
    EXPECT_EQ(rec.retiring, sys.core(0).topdown.retiring.value());
}

TEST(Sample, ReportIsBitwiseIdenticalAcrossJobCounts)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 50000;
    sc.warmup = 10000;
    sc.count = 6;

    SampleReport r1 = runSampled(testConfig(), wb.program, sc, 1,
                                 checkedHooks(wb));
    SampleReport r4 = runSampled(testConfig(), wb.program, sc, 4,
                                 checkedHooks(wb));

    std::ostringstream j1, j4;
    writeSampleJson(j1, "crc", r1);
    writeSampleJson(j4, "crc", r4);
    EXPECT_EQ(j1.str(), j4.str());

    std::ostringstream l1, l4;
    writeSampleSummaryLine(l1, "crc", r1);
    writeSampleSummaryLine(l4, "crc", r4);
    EXPECT_EQ(l1.str(), l4.str());
}

TEST(Sample, SeededSelectionIsDeterministicAndDistinct)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 25000;
    sc.warmup = 5000;
    sc.count = 3;
    sc.seed = 12345;

    SampleReport a = runSampled(testConfig(), wb.program, sc, 2);
    SampleReport b = runSampled(testConfig(), wb.program, sc, 2);
    std::ostringstream ja, jb;
    writeSampleJson(ja, "crc", a);
    writeSampleJson(jb, "crc", b);
    EXPECT_EQ(ja.str(), jb.str());

    ASSERT_EQ(a.intervals.size(), 3u);
    // Measured indices are sorted and unique (merged interval order).
    EXPECT_LT(a.intervals[0].index, a.intervals[1].index);
    EXPECT_LT(a.intervals[1].index, a.intervals[2].index);
}

/** Full coverage (every interval measured, generous warm-up from the
 *  preceding interval tail) must land the extrapolated cycle count
 *  within the CLI's stated 5% error bound of a full detailed run —
 *  on crc it is well under 1%. */
TEST(Sample, EstimateMatchesFullRunWithinBound)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 50000;
    sc.warmup = 10000;
    sc.count = 0; // all intervals

    SampleReport rep = runSampled(testConfig(), wb.program, sc, 4,
                                  checkedHooks(wb));
    EXPECT_TRUE(rep.halted);
    EXPECT_TRUE(rep.checksumOk);

    System sys(testConfig());
    sys.loadProgram(wb.program);
    RunResult full = sys.run();
    ASSERT_EQ(full.stop, StopReason::Halted);
    ASSERT_EQ(full.insts, rep.totalInsts);

    const double err =
        std::abs(double(rep.estCycles) - double(full.cycles)) /
        double(full.cycles);
    EXPECT_LT(err, 0.05) << "est " << rep.estCycles << " vs full "
                         << full.cycles;
    // The error bar is honest: the full-run CPI lies within ~2 CI
    // half-widths of the estimate (ratio-of-sums vs per-interval CI).
    const double fullCpi = double(full.cycles) / double(full.insts);
    EXPECT_LT(std::abs(rep.cpi.value - fullCpi),
              2.0 * rep.cpi.ci95 + 0.05 * fullCpi);
}

TEST(Sample, KeepGoingHookAbortsThePipeline)
{
    WorkloadBuild wb = crcBuild();
    SampleConfig sc;
    sc.interval = 50000;

    SampleHooks hooks;
    hooks.keepGoing = [](uint64_t n) { return n < 100000; };
    EXPECT_THROW(
        runSampled(testConfig(), wb.program, sc, 1, hooks),
        SampleError);
}

} // namespace sample
} // namespace xt910
