# Service-layer CLI smoke, run as a ctest script:
#
#   cmake -DXT910D=<xt910d> -DXT910_CLIENT=<xt910-client>
#         -DXT910_RUN=<xt910-run> -DWORK_DIR=<dir> -P smoke.cmake
#
# Boots the daemon on an ephemeral port piped straight into the client
# (`xt910d | xt910-client --port-stdin smoke`), whose smoke command
# walks the whole API: healthz, version, submit, stream, status,
# stats, cache-hit resubmission (asserting cached=true and identical
# bytes), the 400/404 error paths, and finally the admin shutdown so
# the daemon exits cleanly. The streamed JSONL and the stats document
# it saves are then compared BYTE FOR BYTE against direct xt910-run
# output of the same workload — the service must be a transparent
# transport, not a reimplementation.

foreach(v XT910D XT910_CLIENT XT910_RUN WORK_DIR)
    if(NOT ${v})
        message(FATAL_ERROR "usage: cmake -DXT910D=... -DXT910_CLIENT=... -DXT910_RUN=... -DWORK_DIR=... -P smoke.cmake")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(STREAM_OUT "${WORK_DIR}/stream.jsonl")
set(STATS_OUT "${WORK_DIR}/stats.json")

# ---- daemon | client smoke --------------------------------------------
execute_process(
    COMMAND "${XT910D}"
        --cache-dir ${WORK_DIR}/cache --state-dir ${WORK_DIR}/state
        --jobs 2
    COMMAND "${XT910_CLIENT}" --port-stdin smoke
        --workload crc --stats-interval 20000
        --stream-out ${STREAM_OUT} --stats-out ${STATS_OUT}
    OUTPUT_VARIABLE smoke_out
    ERROR_VARIABLE smoke_err
    RESULTS_VARIABLE smoke_rcs)
foreach(rc IN LISTS smoke_rcs)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "pipeline rc=${smoke_rcs}:\n${smoke_out}\n${smoke_err}")
    endif()
endforeach()
if(NOT smoke_out MATCHES "smoke: ok")
    message(FATAL_ERROR "client smoke did not report ok:\n${smoke_out}\n${smoke_err}")
endif()

# ---- byte-identity against direct runs --------------------------------
execute_process(
    COMMAND "${XT910_RUN}" --stats-json ${WORK_DIR}/direct.json crc
    OUTPUT_QUIET ERROR_VARIABLE run_err RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "direct stats run failed (rc=${run_rc}):\n${run_err}")
endif()
execute_process(
    COMMAND "${XT910_RUN}" --stats-json ${WORK_DIR}/direct.jsonl
        --stats-interval 20000 crc
    OUTPUT_QUIET ERROR_VARIABLE run_err RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "direct stream run failed (rc=${run_rc}):\n${run_err}")
endif()

foreach(pair "${STATS_OUT};${WORK_DIR}/direct.json"
             "${STREAM_OUT};${WORK_DIR}/direct.jsonl")
    list(GET pair 0 got)
    list(GET pair 1 want)
    file(READ "${got}" got_bytes)
    file(READ "${want}" want_bytes)
    if(NOT got_bytes STREQUAL want_bytes)
        message(FATAL_ERROR "service output ${got} differs from direct ${want}")
    endif()
endforeach()

file(STRINGS "${STREAM_OUT}" stream_lines)
list(LENGTH stream_lines n_stream)
message(STATUS "serve smoke ok: stream (${n_stream} records) and stats byte-identical to direct runs")
