/**
 * Full service-stack tests: a real JobManager behind makeApiHandler
 * behind HttpServer, exercised through the client helpers over
 * loopback sockets — the exact path xt910-client takes. Covers the
 * submit/stream/status/stats lifecycle, cache-hit resubmission with
 * byte-identical stats, API error statuses, the admin shutdown hook,
 * and concurrent clients with per-client quotas enforced.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/api.h"
#include "serve/http.h"
#include "serve/jobs.h"

namespace xt910
{
namespace serve
{

namespace
{

/** JobManager + API handler + HTTP server on an ephemeral port. */
class Service
{
  public:
    explicit Service(const JobManagerConfig &cfg,
                     std::function<void()> onShutdown = nullptr)
        : jobs(cfg)
    {
        ApiOptions api;
        api.requestShutdown = std::move(onShutdown);
        HttpServer::Options opts;
        server = std::make_unique<HttpServer>(
            opts, makeApiHandler(jobs, api));
        server->start();
    }

    ~Service() { server->stop(); }

    uint16_t port() const { return server->port(); }

    /** Request against the service; asserts transport success. */
    ClientResponse request(
        const std::string &method, const std::string &target,
        const std::string &body = "",
        const std::vector<std::pair<std::string, std::string>>
            &headers = {})
    {
        ClientResponse resp;
        std::string err;
        EXPECT_TRUE(httpRequest("127.0.0.1", port(), method, target,
                                headers, body, resp, err))
            << method << " " << target << ": " << err;
        return resp;
    }

    /** POST a job, return (status, id). */
    std::pair<int, std::string>
    submit(const std::string &body,
           const std::string &apiKey = "")
    {
        std::vector<std::pair<std::string, std::string>> hdrs;
        if (!apiKey.empty())
            hdrs.emplace_back("X-Api-Key", apiKey);
        ClientResponse resp =
            request("POST", "/v1/jobs", body, hdrs);
        std::string id;
        json::Value v;
        if (json::parse(resp.body, v))
            if (const json::Value *f = v.find("id"))
                id = f->asString();
        return {resp.status, id};
    }

    /** Poll GET /v1/jobs/<id> until its state matches @p want. */
    json::Value
    waitState(const std::string &id, const std::string &want,
              unsigned deadlineSecs = 120)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(deadlineSecs);
        json::Value v;
        std::string state;
        while (std::chrono::steady_clock::now() < deadline) {
            ClientResponse resp = request("GET", "/v1/jobs/" + id);
            EXPECT_EQ(resp.status, 200) << resp.body;
            EXPECT_TRUE(json::parse(resp.body, v)) << resp.body;
            if (const json::Value *f = v.find("state"))
                state = f->asString();
            if (state == want)
                return v;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        ADD_FAILURE() << id << ": still '" << state << "', wanted '"
                      << want << "'";
        return v;
    }

    JobManager jobs;

  private:
    std::unique_ptr<HttpServer> server;
};

const char *const kQuickJob =
    R"({"workload": "crc", "stats_interval": 20000})";
/** Scaled past the cap, so it runs exactly 400k instructions. */
const char *const kLongJob =
    R"({"workload": "crc", "scale": 16, "max_insts": 400000})";

} // namespace

TEST(Service, SubmitStreamStatusStatsLifecycle)
{
    const std::string cacheDir =
        "serve_svc_cache_" + std::to_string(uint64_t(::getpid()));
    std::filesystem::remove_all(cacheDir);
    JobManagerConfig cfg;
    cfg.cacheDir = cacheDir;
    Service svc(cfg);

    auto [status, id] = svc.submit(kQuickJob, "alice");
    ASSERT_EQ(status, 201);
    ASSERT_FALSE(id.empty());

    // The stream is chunked JSONL: every record a valid document,
    // closed by the run summary.
    std::string streamed;
    int streamStatus = 0;
    std::string err;
    ASSERT_TRUE(httpRequestStream(
        "127.0.0.1", svc.port(), "GET", "/v1/jobs/" + id + "/stream",
        {}, "", streamStatus,
        [&](const char *p, size_t n) {
            streamed.append(p, n);
            return true;
        },
        err))
        << err;
    EXPECT_EQ(streamStatus, 200);
    size_t records = 0, pos = 0, nl;
    while ((nl = streamed.find('\n', pos)) != std::string::npos) {
        EXPECT_TRUE(
            json::validate(streamed.substr(pos, nl - pos)));
        ++records;
        pos = nl + 1;
    }
    EXPECT_GT(records, 1u);

    // Status: done, checksum verified, identity echoed.
    json::Value done = svc.waitState(id, "done");
    EXPECT_TRUE(done.find("checksum_ok")->asBool());
    EXPECT_EQ(done.find("client")->asString(), "alice");
    EXPECT_EQ(done.find("name")->asString(), "crc");
    EXPECT_FALSE(done.find("cached")->asBool());

    // Stats document is served verbatim.
    ClientResponse stats =
        svc.request("GET", "/v1/jobs/" + id + "/stats");
    ASSERT_EQ(stats.status, 200);
    EXPECT_TRUE(json::validate(stats.body));

    // Resubmission of the identical spec: cache hit, no simulation,
    // byte-identical stats document.
    ClientResponse resub = svc.request(
        "POST", "/v1/jobs", kQuickJob, {{"X-Api-Key", "alice"}});
    ASSERT_EQ(resub.status, 201);
    json::Value rv;
    ASSERT_TRUE(json::parse(resub.body, rv));
    EXPECT_TRUE(rv.find("cached")->asBool());
    const std::string hitId = rv.find("id")->asString();
    ClientResponse hitStats =
        svc.request("GET", "/v1/jobs/" + hitId + "/stats");
    ASSERT_EQ(hitStats.status, 200);
    EXPECT_EQ(hitStats.body, stats.body);
    EXPECT_EQ(svc.jobs.counters().simulated.load(), 1u);
    EXPECT_EQ(svc.jobs.counters().cacheHits.load(), 1u);

    // The job list carries both entries.
    ClientResponse list = svc.request("GET", "/v1/jobs");
    ASSERT_EQ(list.status, 200);
    json::Value lv;
    ASSERT_TRUE(json::parse(list.body, lv));
    EXPECT_EQ(lv.find("jobs")->elements.size(), 2u);

    std::filesystem::remove_all(cacheDir);
}

TEST(Service, ApiErrorStatusesAndIntrospection)
{
    JobManagerConfig cfg;
    Service svc(cfg);

    EXPECT_EQ(svc.request("GET", "/healthz").body, "{\"ok\": true}\n");
    EXPECT_EQ(svc.request("GET", "/nope").status, 404);
    EXPECT_EQ(svc.request("POST", "/healthz").status, 405);

    ClientResponse ver = svc.request("GET", "/v1/version");
    ASSERT_EQ(ver.status, 200);
    json::Value vv;
    ASSERT_TRUE(json::parse(ver.body, vv));
    EXPECT_EQ(vv.find("tool")->asString(), "xt910d");
    EXPECT_NE(vv.find("result_schema"), nullptr);

    ClientResponse statsz = svc.request("GET", "/v1/statsz");
    ASSERT_EQ(statsz.status, 200);
    EXPECT_TRUE(json::validate(statsz.body));

    // Submit-side 400s.
    EXPECT_EQ(svc.request("POST", "/v1/jobs", "not json").status, 400);
    EXPECT_EQ(
        svc.request("POST", "/v1/jobs", R"({"workload": "zzz"})")
            .status,
        400);
    EXPECT_EQ(svc.request("POST", "/v1/jobs",
                          R"({"workload": "crc", "typo": 1})")
                  .status,
              400);

    // Unknown job everywhere.
    EXPECT_EQ(svc.request("GET", "/v1/jobs/j999999").status, 404);
    EXPECT_EQ(svc.request("GET", "/v1/jobs/j999999/stats").status,
              404);
    EXPECT_EQ(svc.request("GET", "/v1/jobs/j999999/stream").status,
              404);
    EXPECT_EQ(svc.request("DELETE", "/v1/jobs/j999999").status, 404);
    EXPECT_EQ(svc.request("GET", "/v1/jobs/j1/bogus").status, 404);

    // Lifecycle conflicts: stats before done is 409, cancelling a
    // finished job is 409.
    auto [status, id] = svc.submit(kQuickJob);
    ASSERT_EQ(status, 201);
    svc.waitState(id, "done");
    EXPECT_EQ(svc.request("DELETE", "/v1/jobs/" + id).status, 409);

    // Shutdown is not wired in this fixture.
    EXPECT_EQ(svc.request("POST", "/v1/admin/shutdown").status, 404);
}

TEST(Service, AdminShutdownFiresOnce)
{
    std::atomic<int> fired{0};
    JobManagerConfig cfg;
    Service svc(cfg, [&] { fired.fetch_add(1); });

    EXPECT_EQ(svc.request("POST", "/v1/admin/shutdown").status, 202);
    EXPECT_EQ(svc.request("POST", "/v1/admin/shutdown").status, 202);
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(svc.request("GET", "/v1/admin/shutdown").status, 405);
}

TEST(Service, ConcurrentClientsQuotasEnforced)
{
    JobManagerConfig cfg;
    cfg.simJobs = 1;
    cfg.clientQuota = 1;
    cfg.queueMax = 64;
    Service svc(cfg);

    // Each client submits one long job (admitted — quotas are per
    // client) and immediately a second (rejected — quota is 1 and the
    // first cannot have finished yet: one worker, each job hundreds
    // of milliseconds long).
    constexpr int kClients = 6;
    std::vector<std::thread> threads;
    std::atomic<int> admitted{0}, rejected{0}, retryAfterSeen{0};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            const std::string key = "client-" + std::to_string(i);
            std::vector<std::pair<std::string, std::string>> hdrs{
                {"X-Api-Key", key}};
            ClientResponse first;
            std::string err;
            if (!httpRequest("127.0.0.1", svc.port(), "POST",
                             "/v1/jobs", hdrs, kLongJob, first, err))
                return;
            if (first.status == 201)
                admitted.fetch_add(1);
            ClientResponse second;
            if (!httpRequest("127.0.0.1", svc.port(), "POST",
                             "/v1/jobs", hdrs, kLongJob, second, err))
                return;
            if (second.status == 429) {
                rejected.fetch_add(1);
                if (!second.headers["retry-after"].empty())
                    retryAfterSeen.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(admitted.load(), kClients);
    EXPECT_EQ(rejected.load(), kClients);
    EXPECT_EQ(retryAfterSeen.load(), kClients);
    EXPECT_EQ(svc.jobs.counters().rejectedQuota.load(),
              uint64_t(kClients));

    // Drain the backlog so teardown is quick: cancel everything.
    ClientResponse list = svc.request("GET", "/v1/jobs");
    json::Value lv;
    ASSERT_TRUE(json::parse(list.body, lv));
    for (const json::Value &j : lv.find("jobs")->elements)
        svc.request("DELETE",
                    "/v1/jobs/" + j.find("id")->asString());
}

} // namespace serve
} // namespace xt910
