/**
 * HTTP stack tests: request-head parsing units, then a real loopback
 * server/client round trip — fixed and chunked responses, streaming
 * delivery, concurrent requests, and the protocol-error statuses (400
 * malformed head, 413 oversized body, 431 oversized header block)
 * driven through a raw socket where the polished client would refuse
 * to misbehave.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.h"

namespace xt910
{
namespace serve
{

namespace
{

/** Raw request/response over one socket, for malformed-input tests. */
std::string
rawExchange(uint16_t port, const std::string &wire)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                        sizeof(sa)),
              0);
    size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
        if (n <= 0)
            break; // server may reject mid-send; read what it said
        off += size_t(n);
    }
    ::shutdown(fd, SHUT_WR);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, size_t(n));
    ::close(fd);
    return resp;
}

} // namespace

TEST(ParseRequestHead, BasicGetWithQueryAndHeaders)
{
    HttpRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestHead("GET /v1/jobs?limit=5 HTTP/1.1\r\n"
                                 "Host: localhost\r\n"
                                 "X-Api-Key: alice\r\n"
                                 "\r\n",
                                 req, err))
        << err;
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/v1/jobs");
    EXPECT_EQ(req.query, "limit=5");
    // Keys are lower-cased; lookup is case-insensitive by convention.
    EXPECT_EQ(req.header("x-api-key"), "alice");
    EXPECT_EQ(req.header("X-Api-Key"), "alice");
    EXPECT_EQ(req.header("absent"), "");
}

TEST(ParseRequestHead, RejectsMalformedHeads)
{
    HttpRequest req;
    std::string err;
    for (const char *bad : {
             "",                                  // empty
             "GET\r\n\r\n",                       // no target/version
             "GET /x HTTP/4.2\r\n\r\n",          // unknown version
             "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
         }) {
        err.clear();
        EXPECT_FALSE(parseRequestHead(bad, req, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(StatusReason, KnownCodes)
{
    EXPECT_STREQ(statusReason(200), "OK");
    EXPECT_STREQ(statusReason(404), "Not Found");
    EXPECT_STREQ(statusReason(429), "Too Many Requests");
}

TEST(HttpServer, EchoRoundTrip)
{
    HttpServer::Options opts;
    HttpServer server(opts, [](const HttpRequest &req,
                               HttpResponseWriter &w) {
        w.respond(200, "text/plain",
                  req.method + " " + req.path + " [" + req.body + "]",
                  {{"X-Echo", req.header("x-probe")}});
    });
    server.start();

    ClientResponse resp;
    std::string err;
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "POST", "/run",
                            {{"X-Probe", "ping"}}, "payload", resp,
                            err))
        << err;
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "POST /run [payload]");
    EXPECT_EQ(resp.headers.at("x-echo"), "ping");
    server.stop();
}

TEST(HttpServer, ChunkedResponseReassemblesAndStreams)
{
    HttpServer::Options opts;
    HttpServer server(opts, [](const HttpRequest &,
                               HttpResponseWriter &w) {
        w.beginChunked(200, "application/jsonl");
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(
                w.writeChunk("line-" + std::to_string(i) + "\n"));
        w.endChunked();
    });
    server.start();

    const std::string want =
        "line-0\nline-1\nline-2\nline-3\nline-4\n";

    // Buffered client decodes the chunked framing transparently.
    ClientResponse resp;
    std::string err;
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "GET",
                            "/stream", {}, "", resp, err))
        << err;
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, want);

    // Streaming client sees the same bytes through its callback.
    std::string streamed;
    int status = 0;
    ASSERT_TRUE(httpRequestStream(
        "127.0.0.1", server.port(), "GET", "/stream", {}, "", status,
        [&](const char *p, size_t n) {
            streamed.append(p, n);
            return true;
        },
        err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(streamed, want);
    server.stop();
}

TEST(HttpServer, ConcurrentRequestsAllServed)
{
    std::atomic<int> served{0};
    HttpServer::Options opts;
    opts.threads = 4;
    HttpServer server(opts, [&](const HttpRequest &req,
                                HttpResponseWriter &w) {
        served.fetch_add(1);
        w.respond(200, "text/plain", req.path);
    });
    server.start();

    constexpr int kClients = 12;
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            ClientResponse resp;
            std::string err;
            if (httpRequest("127.0.0.1", server.port(), "GET",
                            "/c" + std::to_string(i), {}, "", resp,
                            err) &&
                resp.status == 200 &&
                resp.body == "/c" + std::to_string(i))
                ok.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kClients);
    EXPECT_EQ(served.load(), kClients);
    server.stop();
}

TEST(HttpServer, ProtocolErrorsGetProperStatuses)
{
    HttpServer::Options opts;
    opts.maxHeaderBytes = 512;
    opts.maxBodyBytes = 64;
    HttpServer server(opts, [](const HttpRequest &,
                               HttpResponseWriter &w) {
        w.respond(200, "text/plain", "ok");
    });
    server.start();

    // Malformed request line -> 400.
    EXPECT_NE(rawExchange(server.port(), "NONSENSE\r\n\r\n")
                  .find("400 "),
              std::string::npos);

    // Header block over maxHeaderBytes -> 431.
    std::string big = "GET / HTTP/1.1\r\nX-Pad: " +
                      std::string(1024, 'a') + "\r\n\r\n";
    EXPECT_NE(rawExchange(server.port(), big).find("431 "),
              std::string::npos);

    // Declared body over maxBodyBytes -> 413.
    std::string fat = "POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n" +
                      std::string(4096, 'b');
    EXPECT_NE(rawExchange(server.port(), fat).find("413 "),
              std::string::npos);

    // A well-formed request still succeeds after the abuse.
    ClientResponse resp;
    std::string err;
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "GET", "/",
                            {}, "", resp, err))
        << err;
    EXPECT_EQ(resp.status, 200);
    server.stop();
}

TEST(HttpServer, StopIsIdempotentAndEphemeralPortsAreReal)
{
    HttpServer::Options opts;
    HttpServer server(opts, [](const HttpRequest &,
                               HttpResponseWriter &w) {
        w.respond(204, "text/plain", "");
    });
    EXPECT_GT(server.port(), 0); // ephemeral request resolved at bind
    server.start();
    server.stop();
    server.stop(); // second stop must be a no-op
}

} // namespace serve
} // namespace xt910
