/**
 * JobManager tests, driving the scheduler directly (no sockets):
 * spec validation and JSON round-trip, run-to-done with stream and
 * stats documents, cross-instance determinism of the stats bytes,
 * cache hits that skip simulation, per-client quotas and the bounded
 * queue, cancellation of queued and running jobs, interactive-first
 * dispatch, and drain -> restore resume from a mid-run checkpoint.
 *
 * Scheduling tests pin the single worker with a "long" job (a scaled
 * workload capped by max_insts, so its length is exact and bounded)
 * and only assert queue behaviour once that job is observably Running.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/jobs.h"

namespace xt910
{
namespace serve
{

namespace
{

/** Fresh scratch dir under the test's cwd. */
std::string
scratchDir(const std::string &tag)
{
    std::string d = "serve_test_" + tag + "_" +
                    std::to_string(uint64_t(::getpid()));
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

/** A quick full run: completes, checksum verifies. */
JobSpec
quickSpec()
{
    JobSpec s;
    s.workload = "crc";
    s.statsInterval = 20000;
    return s;
}

/**
 * A long but exactly-bounded run: the scale stretches the workload
 * well past the instruction cap, so the job retires exactly max_insts
 * instructions — long enough to be observably Running while the tests
 * poke the queue, short enough to finish promptly.
 */
JobSpec
longSpec()
{
    JobSpec s;
    s.workload = "crc";
    s.scale = 16;
    s.maxInsts = 400000;
    return s;
}

/** Poll until the job reaches @p want (fails the test on timeout). */
JobInfo
waitState(JobManager &mgr, const std::string &id, JobState want,
          unsigned deadlineSecs = 120)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadlineSecs);
    JobInfo info;
    while (std::chrono::steady_clock::now() < deadline) {
        EXPECT_TRUE(mgr.get(id, info));
        if (info.state == want)
            return info;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << id << ": still " << jobStateName(info.state)
                  << " after " << deadlineSecs << "s, wanted "
                  << jobStateName(want);
    return info;
}

} // namespace

TEST(JobSpec, JsonRoundTrip)
{
    JobSpec s;
    s.workload = "numsort";
    s.preset = "u74";
    s.cores = 2;
    s.scale = 3;
    s.l2Kib = 512;
    s.maxInsts = 12345;
    s.statsInterval = 1000;
    s.timeoutSecs = 2.5;
    s.priority = JobPriority::Batch;
    s.client = "alice";

    json::Value v;
    ASSERT_TRUE(json::parse(s.toJson(), v));
    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(v, back, err)) << err;
    EXPECT_EQ(back.toJson(), s.toJson());
    EXPECT_EQ(back.displayName(), "numsort");
}

TEST(JobSpec, FromJsonRejectsUnknownAndMistyped)
{
    JobSpec out;
    std::string err;
    json::Value v;

    ASSERT_TRUE(json::parse(R"({"workload": "crc", "cores": "two"})",
                            v));
    EXPECT_FALSE(JobSpec::fromJson(v, out, err));

    // A misspelled knob must be an error, not silently ignored.
    ASSERT_TRUE(json::parse(R"({"workload": "crc", "scal": 4})", v));
    err.clear();
    EXPECT_FALSE(JobSpec::fromJson(v, out, err));
    EXPECT_NE(err.find("scal"), std::string::npos);
}

TEST(JobManager, SubmitValidatesSpecs)
{
    JobManagerConfig cfg;
    JobManager mgr(cfg);

    auto expectBad = [&](JobSpec s, const char *what) {
        SubmitResult r = mgr.submit(s);
        EXPECT_FALSE(r.ok) << what;
        EXPECT_EQ(r.httpStatus, 400) << what;
        EXPECT_FALSE(r.error.empty()) << what;
    };

    expectBad(JobSpec{}, "neither workload nor source");

    JobSpec both = quickSpec();
    both.source = "xtfuzz";
    expectBad(both, "both workload and source");

    JobSpec unknown = quickSpec();
    unknown.workload = "no-such-workload";
    expectBad(unknown, "unknown workload");

    JobSpec preset = quickSpec();
    preset.preset = "pentium";
    expectBad(preset, "unknown preset");

    JobSpec zeroScale = quickSpec();
    zeroScale.scale = 0;
    expectBad(zeroScale, "scale 0");

    JobSpec cores = quickSpec();
    cores.cores = 65;
    expectBad(cores, "cores over the limit");
}

TEST(JobManager, RunsToDoneWithStreamAndStats)
{
    JobManagerConfig cfg;
    JobManager mgr(cfg);

    SubmitResult r = mgr.submit(quickSpec());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.httpStatus, 201);
    EXPECT_FALSE(r.cached);

    JobInfo info = waitState(mgr, r.id, JobState::Done);
    EXPECT_TRUE(info.checksumOk);
    EXPECT_GT(info.insts, 0u);
    EXPECT_GT(info.cycles, 0u);
    EXPECT_EQ(info.name, "crc");

    // Stats document exists and is valid JSON.
    std::string doc;
    ASSERT_TRUE(mgr.stats(r.id, doc));
    EXPECT_TRUE(json::validate(doc)) << doc;
    EXPECT_NE(doc.find("\"workload\": \"crc\""), std::string::npos);

    // The JSONL stream drains to completion; every record parses and
    // the final record is the run summary.
    size_t cursor = 0;
    bool done = false;
    std::vector<std::string> lines;
    while (!done)
        ASSERT_TRUE(mgr.readStream(r.id, cursor, lines, done));
    ASSERT_GT(lines.size(), 1u);
    for (const std::string &ln : lines)
        EXPECT_TRUE(json::validate(ln)) << ln;
    EXPECT_NE(lines.back().find("\"workload\": \"crc\""),
              std::string::npos);

    // Unknown ids are unknown everywhere.
    JobInfo nope;
    EXPECT_FALSE(mgr.get("j999999", nope));
    EXPECT_FALSE(mgr.stats("j999999", doc));
    EXPECT_FALSE(mgr.readStream("j999999", cursor, lines, done));

    // statusJson is a valid document carrying the lifecycle fields.
    EXPECT_TRUE(json::validate(info.statusJson()));
    EXPECT_NE(info.statusJson().find("\"state\": \"done\""),
              std::string::npos);
}

TEST(JobManager, StatsBytesAreDeterministicAcrossInstances)
{
    // The determinism contract behind the result cache: two
    // independent managers running the same spec must produce the
    // same stats document, byte for byte.
    std::string doc1, doc2;
    {
        JobManagerConfig cfg;
        JobManager mgr(cfg);
        SubmitResult r = mgr.submit(quickSpec());
        ASSERT_TRUE(r.ok) << r.error;
        waitState(mgr, r.id, JobState::Done);
        ASSERT_TRUE(mgr.stats(r.id, doc1));
    }
    {
        JobManagerConfig cfg;
        JobManager mgr(cfg);
        SubmitResult r = mgr.submit(quickSpec());
        ASSERT_TRUE(r.ok) << r.error;
        waitState(mgr, r.id, JobState::Done);
        ASSERT_TRUE(mgr.stats(r.id, doc2));
    }
    EXPECT_EQ(doc1, doc2);
}

TEST(JobManager, CacheHitReturnsIdenticalBytesWithoutSimulating)
{
    const std::string dir = scratchDir("cache");
    std::string doc1;

    JobManagerConfig cfg;
    cfg.cacheDir = dir;
    {
        JobManager mgr(cfg);
        SubmitResult r = mgr.submit(quickSpec());
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_FALSE(r.cached);
        waitState(mgr, r.id, JobState::Done);
        ASSERT_TRUE(mgr.stats(r.id, doc1));
        EXPECT_EQ(mgr.counters().simulated.load(), 1u);

        // Same spec again: served from cache, no second simulation,
        // identical bytes, job is born Done.
        SubmitResult hit = mgr.submit(quickSpec());
        ASSERT_TRUE(hit.ok) << hit.error;
        EXPECT_TRUE(hit.cached);
        JobInfo info;
        ASSERT_TRUE(mgr.get(hit.id, info));
        EXPECT_EQ(info.state, JobState::Done);
        EXPECT_TRUE(info.cached);
        std::string doc2;
        ASSERT_TRUE(mgr.stats(hit.id, doc2));
        EXPECT_EQ(doc2, doc1);
        EXPECT_EQ(mgr.counters().simulated.load(), 1u);
        EXPECT_EQ(mgr.counters().cacheHits.load(), 1u);

        // A different configuration is a different cache key.
        JobSpec other = quickSpec();
        other.maxInsts = 100000;
        SubmitResult miss = mgr.submit(other);
        ASSERT_TRUE(miss.ok) << miss.error;
        EXPECT_FALSE(miss.cached);
        waitState(mgr, miss.id, JobState::Done);
        EXPECT_EQ(mgr.counters().simulated.load(), 2u);
    }

    // The cache is persistent: a fresh manager over the same
    // directory hits immediately.
    JobManager mgr2(cfg);
    SubmitResult hit = mgr2.submit(quickSpec());
    ASSERT_TRUE(hit.ok) << hit.error;
    EXPECT_TRUE(hit.cached);
    std::string doc3;
    ASSERT_TRUE(mgr2.stats(hit.id, doc3));
    EXPECT_EQ(doc3, doc1);
    EXPECT_EQ(mgr2.counters().simulated.load(), 0u);

    std::filesystem::remove_all(dir);
}

TEST(JobManager, QuotaRejectsOverActiveClients)
{
    JobManagerConfig cfg;
    cfg.simJobs = 1;
    cfg.clientQuota = 1;
    JobManager mgr(cfg);

    JobSpec pin = longSpec();
    pin.client = "alice";
    SubmitResult a = mgr.submit(pin);
    ASSERT_TRUE(a.ok) << a.error;

    SubmitResult over = mgr.submit(pin);
    EXPECT_FALSE(over.ok);
    EXPECT_EQ(over.httpStatus, 429);
    EXPECT_GT(over.retryAfterSecs, 0u);
    EXPECT_EQ(mgr.counters().rejectedQuota.load(), 1u);

    // Another client is not affected by alice's quota.
    JobSpec bobs = longSpec();
    bobs.client = "bob";
    SubmitResult b = mgr.submit(bobs);
    EXPECT_TRUE(b.ok) << b.error;

    // Once alice's job finishes, her quota frees up.
    waitState(mgr, a.id, JobState::Done);
    SubmitResult again = mgr.submit(pin);
    EXPECT_TRUE(again.ok) << again.error;
}

TEST(JobManager, BoundedQueueRejectsWhenFull)
{
    JobManagerConfig cfg;
    cfg.simJobs = 1;
    cfg.queueMax = 1;
    cfg.clientQuota = 100;
    JobManager mgr(cfg);

    // Pin the worker, then wait until the job has left the queue so
    // the depth check below is deterministic.
    SubmitResult pin = mgr.submit(longSpec());
    ASSERT_TRUE(pin.ok) << pin.error;
    waitState(mgr, pin.id, JobState::Running);

    SubmitResult q1 = mgr.submit(longSpec());
    ASSERT_TRUE(q1.ok) << q1.error;
    EXPECT_EQ(mgr.queueDepth(), 1u);

    SubmitResult full = mgr.submit(longSpec());
    EXPECT_FALSE(full.ok);
    EXPECT_EQ(full.httpStatus, 429);
    EXPECT_GT(full.retryAfterSecs, 0u);
    EXPECT_EQ(mgr.counters().rejectedQueueFull.load(), 1u);
}

TEST(JobManager, CancelQueuedAndRunning)
{
    JobManagerConfig cfg;
    cfg.simJobs = 1;
    cfg.clientQuota = 100;
    JobManager mgr(cfg);

    SubmitResult running = mgr.submit(longSpec());
    ASSERT_TRUE(running.ok) << running.error;
    waitState(mgr, running.id, JobState::Running);

    SubmitResult queued = mgr.submit(longSpec());
    ASSERT_TRUE(queued.ok) << queued.error;

    // A queued job dies immediately.
    std::string err;
    ASSERT_TRUE(mgr.cancel(queued.id, err)) << err;
    JobInfo info;
    ASSERT_TRUE(mgr.get(queued.id, info));
    EXPECT_EQ(info.state, JobState::Cancelled);

    // A running job dies at its next step-hook poll.
    ASSERT_TRUE(mgr.cancel(running.id, err)) << err;
    info = waitState(mgr, running.id, JobState::Cancelled);
    EXPECT_EQ(info.error, "cancelled by client");

    // Finished jobs and unknown ids cannot be cancelled.
    EXPECT_FALSE(mgr.cancel(running.id, err));
    EXPECT_FALSE(mgr.cancel("j999999", err));
    EXPECT_EQ(mgr.counters().cancelled.load(), 2u);
}

TEST(JobManager, InteractiveJobsDispatchBeforeBatch)
{
    JobManagerConfig cfg;
    cfg.simJobs = 1;
    cfg.clientQuota = 100;
    JobManager mgr(cfg);

    JobSpec batch = longSpec();
    batch.priority = JobPriority::Batch;
    JobSpec inter = longSpec();
    inter.priority = JobPriority::Interactive;

    // Pin the worker, then queue batch FIRST, interactive second.
    SubmitResult pin = mgr.submit(batch);
    ASSERT_TRUE(pin.ok) << pin.error;
    waitState(mgr, pin.id, JobState::Running);
    SubmitResult b = mgr.submit(batch);
    ASSERT_TRUE(b.ok) << b.error;
    SubmitResult i = mgr.submit(inter);
    ASSERT_TRUE(i.ok) << i.error;

    // Free the worker; the interactive job must be dispatched next.
    std::string err;
    ASSERT_TRUE(mgr.cancel(pin.id, err)) << err;
    waitState(mgr, i.id, JobState::Running);
    JobInfo binfo;
    ASSERT_TRUE(mgr.get(b.id, binfo));
    EXPECT_EQ(binfo.state, JobState::Queued);

    // Unblock teardown.
    mgr.cancel(i.id, err);
    mgr.cancel(b.id, err);
}

TEST(JobManager, DrainCheckpointsAndRestoreResumes)
{
    const std::string dir = scratchDir("drain");
    JobManagerConfig cfg;
    cfg.simJobs = 1;
    cfg.clientQuota = 100;
    cfg.stateDir = dir;

    // Reference document from an uninterrupted run of the same spec.
    std::string wantDoc;
    {
        JobManagerConfig ref;
        JobManager mgr(ref);
        SubmitResult r = mgr.submit(longSpec());
        ASSERT_TRUE(r.ok) << r.error;
        waitState(mgr, r.id, JobState::Done);
        ASSERT_TRUE(mgr.stats(r.id, wantDoc));
    }

    std::string runId, queuedId;
    {
        JobManager mgr(cfg);
        SubmitResult run = mgr.submit(longSpec());
        ASSERT_TRUE(run.ok) << run.error;
        runId = run.id;
        SubmitResult q = mgr.submit(longSpec());
        ASSERT_TRUE(q.ok) << q.error;
        queuedId = q.id;

        // Let the running job make real progress so the drain has
        // something to checkpoint mid-run.
        JobInfo info;
        do {
            ASSERT_TRUE(mgr.get(runId, info));
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        } while (info.progressInsts == 0);

        mgr.drain();
        ASSERT_TRUE(
            std::filesystem::exists(dir + "/state.json"));
        ASSERT_TRUE(
            std::filesystem::exists(dir + "/" + runId + ".ckpt"));
    }

    // A new manager over the same state dir picks both jobs up; the
    // resumed one restarts from the checkpoint, not from scratch, and
    // still produces the uninterrupted run's exact stats bytes.
    JobManager mgr2(cfg);
    mgr2.restoreState();
    JobInfo a = waitState(mgr2, runId, JobState::Done);
    JobInfo b = waitState(mgr2, queuedId, JobState::Done);
    EXPECT_EQ(a.insts, 400000u);
    EXPECT_EQ(b.insts, 400000u);
    std::string doc;
    ASSERT_TRUE(mgr2.stats(runId, doc));
    EXPECT_EQ(doc, wantDoc);

    // Restored ids are not reissued to new jobs.
    SubmitResult fresh = mgr2.submit(quickSpec());
    ASSERT_TRUE(fresh.ok) << fresh.error;
    EXPECT_NE(fresh.id, runId);
    EXPECT_NE(fresh.id, queuedId);

    std::filesystem::remove_all(dir);
}

TEST(JobManager, WallClockBudgetFailsTheJob)
{
    JobManagerConfig cfg;
    JobManager mgr(cfg);
    JobSpec s = longSpec();
    s.timeoutSecs = 0.001; // guaranteed to fire at the first poll
    SubmitResult r = mgr.submit(s);
    ASSERT_TRUE(r.ok) << r.error;
    JobInfo info = waitState(mgr, r.id, JobState::Failed);
    EXPECT_NE(info.error.find("wall-clock"), std::string::npos);
    EXPECT_EQ(mgr.counters().failed.load(), 1u);
}

TEST(JobManager, CountersJsonIsValid)
{
    JobManagerConfig cfg;
    JobManager mgr(cfg);
    EXPECT_TRUE(json::validate(mgr.countersJson()))
        << mgr.countersJson();
}

namespace
{

/** A sampled-mode batch job over the same workload as quickSpec(). */
JobSpec
sampledSpec()
{
    JobSpec s;
    s.workload = "crc";
    s.sampleInterval = 50000;
    s.sampleCount = 4;
    s.sampleWarmup = 10000;
    s.priority = JobPriority::Batch;
    return s;
}

} // namespace

TEST(JobSpec, SampleFieldsRoundTrip)
{
    JobSpec s = sampledSpec();
    s.sampleSeed = 7;
    json::Value v;
    ASSERT_TRUE(json::parse(s.toJson(), v));
    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(v, back, err)) << err;
    EXPECT_EQ(back.sampleInterval, 50000u);
    EXPECT_EQ(back.sampleCount, 4u);
    EXPECT_EQ(back.sampleWarmup, 10000u);
    EXPECT_EQ(back.sampleSeed, 7u);
    EXPECT_EQ(back.toJson(), s.toJson());
}

TEST(JobManager, SubmitValidatesSamplingSpecs)
{
    JobManagerConfig cfg;
    JobManager mgr(cfg);

    auto expectBad = [&](JobSpec s, const char *what) {
        SubmitResult r = mgr.submit(s);
        EXPECT_FALSE(r.ok) << what;
        EXPECT_EQ(r.httpStatus, 400) << what;
        EXPECT_FALSE(r.error.empty()) << what;
    };

    JobSpec multi = sampledSpec();
    multi.cores = 2;
    expectBad(multi, "sampling with multiple cores");

    JobSpec stream = sampledSpec();
    stream.statsInterval = 1000;
    expectBad(stream, "sampling with stats_interval");

    JobSpec cyc = sampledSpec();
    cyc.maxCycles = 100000;
    expectBad(cyc, "sampling with max_cycles");

    JobSpec orphan;
    orphan.workload = "crc";
    orphan.sampleWarmup = 1000; // without sample_interval
    expectBad(orphan, "sample knobs without sample_interval");
}

TEST(JobManager, SampledJobRunsAndCacheKeyFoldsSamplingParams)
{
    const std::string dir = scratchDir("sample_cache");
    JobManagerConfig cfg;
    cfg.cacheDir = dir;
    JobManager mgr(cfg);

    // A sampled batch job completes with the sampled-mode document.
    SubmitResult r = mgr.submit(sampledSpec());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.cached);
    JobInfo info = waitState(mgr, r.id, JobState::Done);
    EXPECT_TRUE(info.checksumOk);
    EXPECT_GT(info.insts, 0u);   // fast-forward total
    EXPECT_GT(info.cycles, 0u);  // extrapolated estimate
    std::string doc1;
    ASSERT_TRUE(mgr.stats(r.id, doc1));
    EXPECT_TRUE(json::validate(doc1)) << doc1;
    EXPECT_NE(doc1.find("\"mode\": \"sampled\""), std::string::npos);
    EXPECT_EQ(mgr.counters().simulated.load(), 1u);

    // The stream closed with the sampled summary line.
    size_t cursor = 0;
    bool done = false;
    std::vector<std::string> lines;
    while (!done)
        ASSERT_TRUE(mgr.readStream(r.id, cursor, lines, done));
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.back().find("\"mode\": \"sampled\""),
              std::string::npos);

    // Identical sampled spec: served from cache, byte-identical, no
    // second simulation — and the cached hit carries the totals.
    SubmitResult hit = mgr.submit(sampledSpec());
    ASSERT_TRUE(hit.ok) << hit.error;
    EXPECT_TRUE(hit.cached);
    std::string doc2;
    ASSERT_TRUE(mgr.stats(hit.id, doc2));
    EXPECT_EQ(doc2, doc1);
    EXPECT_EQ(mgr.counters().simulated.load(), 1u);
    JobInfo cachedInfo;
    ASSERT_TRUE(mgr.get(hit.id, cachedInfo));
    EXPECT_EQ(cachedInfo.insts, info.insts);
    EXPECT_EQ(cachedInfo.cycles, info.cycles);
    EXPECT_TRUE(cachedInfo.checksumOk);

    // A *full* run of the same workload+config must not collide with
    // the sampled document: different key, real simulation, and a
    // full-run (not sampled) stats document.
    JobSpec full;
    full.workload = "crc";
    full.priority = JobPriority::Batch;
    SubmitResult fr = mgr.submit(full);
    ASSERT_TRUE(fr.ok) << fr.error;
    EXPECT_FALSE(fr.cached);
    waitState(mgr, fr.id, JobState::Done);
    std::string fullDoc;
    ASSERT_TRUE(mgr.stats(fr.id, fullDoc));
    EXPECT_EQ(fullDoc.find("\"mode\": \"sampled\""), std::string::npos);
    EXPECT_EQ(mgr.counters().simulated.load(), 2u);

    // Every sampling knob is part of the key: varying any one of
    // interval, count, warm-up or seed misses the cache.
    unsigned expectSim = 2;
    for (int knob = 0; knob < 4; ++knob) {
        JobSpec s = sampledSpec();
        if (knob == 0)
            s.sampleInterval = 25000;
        else if (knob == 1)
            s.sampleCount = 3;
        else if (knob == 2)
            s.sampleWarmup = 5000;
        else
            s.sampleSeed = 42;
        SubmitResult miss = mgr.submit(s);
        ASSERT_TRUE(miss.ok) << miss.error;
        EXPECT_FALSE(miss.cached) << "knob " << knob;
        waitState(mgr, miss.id, JobState::Done);
        EXPECT_EQ(mgr.counters().simulated.load(), ++expectSim)
            << "knob " << knob;
    }

    std::filesystem::remove_all(dir);
}

} // namespace serve
} // namespace xt910
