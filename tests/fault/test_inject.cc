/**
 * Fault-injection harness tests: the injector applies planned faults,
 * campaigns are deterministic and classify every run, the watchdog
 * catches livelocked guests, run limits stop with diagnostics, and a
 * guest with a trap handler survives injected faults end to end.
 */

#include <gtest/gtest.h>

#include <array>

#include "fault/campaign.h"
#include "fault/injector.h"
#include "func/csr.h"
#include "func/trap.h"

namespace xt910
{

using namespace reg;

namespace
{

/** Sum 1..100 into "result" (expected 5050), with a trap handler that
 *  counts recoverable faults in a2 and skips the faulting word. */
Program
sumProgram(bool withHandler)
{
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.addi(a2, a2, 1);
    a.csrr(t0, csr::mepc);
    a.addi(t0, t0, 4);
    a.csrw(csr::mepc, t0);
    a.mret();
    a.label("_start");
    if (withHandler) {
        a.la(t0, "handler");
        a.csrw(csr::mtvec, t0);
    }
    a.li(a0, 0);
    a.li(t0, 1);
    a.li(t1, 101);
    a.label("loop");
    a.add(a0, a0, t0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "loop");
    a.la(t6, "result");
    a.sd(a0, t6, 0);
    a.ebreak();
    a.align(8);
    a.label("result");
    a.dword(0);
    return a.assemble();
}

constexpr uint64_t sumExpected = 5050;

} // namespace

TEST(Injector, RegBitFlipAppliesAtPlannedInstruction)
{
    SystemConfig cfg;
    System sys(cfg);
    Assembler a;
    a.li(a1, 0x10);
    a.li(a3, 1);
    a.label("spin");
    a.addi(a3, a3, 1);
    a.li(t1, 40);
    a.blt(a3, t1, "spin");
    a.ebreak();
    sys.loadProgram(a.assemble());

    FaultPlan plan;
    plan.kind = FaultKind::RegBitFlip;
    plan.atInst = 5; // after li a1 retires
    plan.reg = 11;   // a1
    plan.bit = 0;
    FaultInjector inj(plan);
    inj.attach(sys);
    sys.run();
    EXPECT_TRUE(inj.fired());
    EXPECT_EQ(sys.iss().hart(0).x[11], 0x11u); // bit 0 flipped
}

TEST(Injector, MemBitFlipCorruptsTheTargetByte)
{
    SystemConfig cfg;
    System sys(cfg);
    Program p = sumProgram(false);
    sys.loadProgram(p);
    Addr target = p.symbol("result");
    sys.memory().write(target, 1, 0x0f);

    FaultPlan plan;
    plan.kind = FaultKind::MemBitFlip;
    plan.atInst = 1;
    plan.addr = target;
    plan.bit = 7;
    FaultInjector inj(plan);
    inj.apply(sys);
    EXPECT_EQ(sys.memory().read(target, 1), 0x8fu);
}

TEST(Watchdog, CatchesTightSpin)
{
    SystemConfig cfg;
    cfg.watchdog.spinWindowInsts = 2'000;
    System sys(cfg);
    Assembler a;
    a.label("spin");
    a.j("spin");
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::Watchdog);
    EXPECT_FALSE(r.diagnostic.empty());
    EXPECT_NE(r.diagnostic.find("watchdog"), std::string::npos);
    EXPECT_NE(r.diagnostic.find("rob"), std::string::npos);
}

TEST(Watchdog, InterruptibleSpinIsAWaitNotAHang)
{
    // The timer-interrupt idiom — spin with MIE enabled until the
    // handler exits — must never trip the watchdog.
    SystemConfig cfg;
    cfg.watchdog.spinWindowInsts = 1'000;
    cfg.maxInsts = 50'000;
    System sys(cfg);
    Assembler a;
    a.j("_start");
    a.align(4);
    a.label("handler");
    a.ebreak();
    a.label("_start");
    a.la(t0, "handler");
    a.csrw(csr::mtvec, t0);
    a.li(t0, int64_t(Clint::defaultBase + Clint::mtimecmpOff));
    a.li(t1, 10'000);
    a.sd(t1, t0, 0);
    a.li(t0, 1 << 7);
    a.csrw(csr::mie, t0);
    a.li(t0, 1 << 3);
    a.csrw(csr::mstatus, t0);
    a.label("spin");
    a.j("spin");
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::Halted);
}

TEST(Watchdog, ProgressingLoopDoesNotFire)
{
    // A long store loop (memset-like) retires far more instructions
    // than the spin window but keeps making progress.
    SystemConfig cfg;
    cfg.watchdog.spinWindowInsts = 1'000;
    System sys(cfg);
    Assembler a;
    a.li(t0, 0x9000'0000);
    a.li(t1, 5'000);
    a.label("loop");
    a.sd(zero, t0, 0);
    a.addi(t0, t0, 8);
    a.addi(t1, t1, -1);
    a.bnez(t1, "loop");
    a.ebreak();
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::Halted);
}

TEST(Limits, MaxCyclesStopsWithDiagnostic)
{
    SystemConfig cfg;
    cfg.maxCycles = 500;
    cfg.watchdog.enabled = false;
    System sys(cfg);
    Assembler a;
    a.li(t1, 1'000'000);
    a.label("loop");
    a.addi(t1, t1, -1);
    a.bnez(t1, "loop");
    a.ebreak();
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::CycleLimit);
    EXPECT_FALSE(r.diagnostic.empty());
}

TEST(Limits, MaxInstsStops)
{
    SystemConfig cfg;
    cfg.maxInsts = 1'000;
    cfg.watchdog.enabled = false;
    System sys(cfg);
    Assembler a;
    a.label("spin");
    a.j("spin");
    sys.loadProgram(a.assemble());
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::InstLimit);
}

TEST(TimingModel, TrapFlushCounterAndPenalty)
{
    // The same program with and without a trap: the trapping version
    // books a trap flush and pays cycles for it.
    auto build = [](bool withIllegal) {
        Assembler a;
        a.j("_start");
        a.align(4);
        a.label("handler");
        a.csrr(t0, csr::mepc);
        a.addi(t0, t0, 4);
        a.csrw(csr::mepc, t0);
        a.mret();
        a.label("_start");
        a.la(t0, "handler");
        a.csrw(csr::mtvec, t0);
        for (int i = 0; i < 20; ++i)
            a.addi(a1, a1, 1);
        if (withIllegal)
            a.word(0xffffffffu);
        for (int i = 0; i < 20; ++i)
            a.addi(a1, a1, 1);
        a.ebreak();
        return a.assemble();
    };

    SystemConfig cfg;
    System clean(cfg);
    clean.loadProgram(build(false));
    RunResult rc = clean.run();
    EXPECT_EQ(clean.core(0).trapFlushes.value(), 0u);

    System faulty(cfg);
    faulty.loadProgram(build(true));
    RunResult rf = faulty.run();
    EXPECT_GE(faulty.core(0).trapFlushes.value(), 1u);
    // Trap + handler + flush costs cycles beyond the extra retires.
    EXPECT_GT(rf.cycles, rc.cycles);
}

TEST(TimingModel, ForcedMispredictBooksARedirect)
{
    // The jump must actually retire (loadProgram enters at "_start",
    // so a preamble jump would be dead code).
    Assembler a;
    a.li(a0, 1);
    a.j("end");
    a.li(a0, 2); // skipped
    a.label("end");
    a.ebreak();
    Program p = a.assemble();

    SystemConfig cfg;
    System base(cfg);
    base.loadProgram(p);
    base.run();
    uint64_t baseMisp = base.core(0).branchMispredicts.value();

    System inj(cfg);
    inj.loadProgram(p);
    inj.core(0).injectMispredict();
    inj.run();
    EXPECT_EQ(inj.core(0).branchMispredicts.value(), baseMisp + 1);
}

TEST(Campaign, GuestWithHandlerSurvivesInjectedFaults)
{
    // Acceptance: the guest installs a handler, we inject an access
    // fault mid-run, and the guest still produces the right result
    // after recovering via mret.
    SystemConfig cfg;
    System sys(cfg);
    Program p = sumProgram(true);
    sys.loadProgram(p);

    FaultPlan plan;
    plan.kind = FaultKind::AccessFault;
    plan.atInst = 50; // inside the sum loop
    FaultInjector inj(plan);
    inj.attach(sys);
    RunResult r = sys.run();
    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_TRUE(inj.fired());
    EXPECT_EQ(sys.iss().trapsTaken(), 1u);
    EXPECT_EQ(sys.iss().hart(0).x[12], 1u); // handler ran once
    // The faulted instruction was skipped, so the sum may differ by
    // one term at most — the guest survived and halted cleanly, which
    // is what this test pins down.
    EXPECT_FALSE(sys.iss().hart(0).fatalTrap);
}

TEST(Campaign, RunsToCompletionAndClassifiesEverything)
{
    CampaignConfig cc;
    cc.program = sumProgram(true);
    cc.expected = sumExpected;
    cc.runs = 40;
    cc.seed = 7;
    FaultCampaign campaign(cc);
    campaign.run();
    EXPECT_GT(campaign.goldenInsts(), 100u);
    uint64_t classified =
        campaign.detected.value() + campaign.masked.value() +
        campaign.silent.value() + campaign.hung.value() +
        campaign.crashed.value();
    EXPECT_EQ(campaign.runs.value(), cc.runs);
    EXPECT_EQ(classified, cc.runs);
}

TEST(Campaign, SameSeedIsDeterministic)
{
    auto counts = [](uint64_t seed) {
        CampaignConfig cc;
        cc.program = sumProgram(true);
        cc.expected = sumExpected;
        cc.runs = 15;
        cc.seed = seed;
        FaultCampaign c(cc);
        c.run();
        return std::array<uint64_t, 5>{
            c.detected.value(), c.masked.value(), c.silent.value(),
            c.hung.value(), c.crashed.value()};
    };
    EXPECT_EQ(counts(3), counts(3));
    // A different seed draws a different plan sequence (coarse check:
    // the campaign actually depends on its seed somewhere).
    Xorshift64 a(3), b(4);
    EXPECT_NE(a.next(), b.next());
}

TEST(Campaign, JobCountDoesNotChangeResults)
{
    // The run farm must be invisible in the output: same seed, same
    // classification counts at any worker count (plans are drawn
    // sequentially, counters merge in trial order).
    auto counts = [](unsigned jobs) {
        CampaignConfig cc;
        cc.program = sumProgram(true);
        cc.expected = sumExpected;
        cc.runs = 24;
        cc.seed = 11;
        cc.jobs = jobs;
        FaultCampaign c(cc);
        c.run();
        return std::array<uint64_t, 6>{
            c.runs.value(),   c.detected.value(), c.masked.value(),
            c.silent.value(), c.hung.value(),     c.crashed.value()};
    };
    auto serial = counts(1);
    EXPECT_EQ(serial, counts(4));
    EXPECT_EQ(serial, counts(8));
}

} // namespace xt910
