/**
 * @file
 * Invariant-checker regression drive. This binary is compiled with
 * XT910_CHECK_INVARIANTS, so every XT_INVARIANT site in the core and
 * memory hierarchy is a hard abort. The tests simply push whole
 * programs through System along paths known to exercise the asserted
 * properties — ROB/LQ/SQ retire ordering, top-down slot accounting,
 * L2 inclusion and MOESI transition legality — and pass as long as
 * nothing trips.
 */

#ifndef XT910_CHECK_INVARIANTS
#error "test_invariants must be built with -DXT910_CHECK_INVARIANTS"
#endif

#include <gtest/gtest.h>

#include "baseline/presets.h"
#include "check/differ.h"
#include "check/progen.h"
#include "core/system.h"
#include "func/csr.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"
#include "xasm/assembler.h"

namespace xt910
{
namespace
{

using namespace reg;

TEST(Invariants, AllWorkloadsOnTimingModel)
{
    WorkloadOptions o;
    o.streamBytes = 32 * 1024;
    SystemConfig cfg = xt910Preset().config;
    for (const Workload &w : allWorkloads()) {
        WorkloadBuild wb = w.build(o);
        System sys(cfg);
        sys.loadProgram(wb.program);
        RunResult r = sys.run();
        EXPECT_EQ(r.stop, StopReason::Halted) << w.name;
        EXPECT_EQ(wl::readResult(sys.memory(), wb.program), wb.expected)
            << w.name;
    }
}

TEST(Invariants, MulticoreCoherenceTraffic)
{
    // A contended AMO counter drives snoops, cache-to-cache transfers
    // and upgrades — the MOESI and inclusion invariants fire on every
    // state change and L1 fill.
    Assembler a;
    a.la(a0, "counter");
    a.li(a1, 400);
    a.li(a2, 1);
    a.label("loop");
    a.amoadd_d(zero, a2, a0);
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    a.align(8);
    a.label("counter");
    a.dword(0);
    SystemConfig cfg;
    cfg.numCores = 4;
    System sys(cfg);
    Program p = a.assemble();
    sys.loadProgram(p);
    sys.run();
    EXPECT_EQ(sys.memory().read(p.symbol("counter"), 8), 1600u);
    EXPECT_GT(sys.memSystem().snoopProbes.value() +
                  sys.memSystem().c2cTransfers.value(),
              0u);
}

TEST(Invariants, FuzzProgramsThroughAllPaths)
{
    // Random programs (loads/stores/AMOs/vector memory/SMC) through
    // the differential harness: each seed runs the timing System once
    // and the ISS twice with all invariant sites armed.
    for (uint64_t seed = 9000; seed < 9008; ++seed) {
        check::GenConfig cfg;
        cfg.seed = seed;
        cfg.numItems = 32;
        check::DiffResult r = check::checkProgram(check::generate(cfg));
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.what;
    }
}

TEST(Invariants, SixteenCoreClusteredRun)
{
    // The paper's max shape: 16 cores over 4 clusters; per-core stores
    // land in per-core slots while the shared L2s stay inclusive.
    Assembler a;
    a.csrr(t0, csr::mhartid);
    a.la(a0, "slots");
    a.slli(t1, t0, 3);
    a.add(a0, a0, t1);
    a.addi(t2, t0, 1);
    a.sd(t2, a0, 0);
    a.ebreak();
    a.align(8);
    a.label("slots");
    a.zero(16 * 8);
    SystemConfig cfg;
    cfg.numCores = 16;
    System sys(cfg);
    Program p = a.assemble();
    sys.loadProgram(p);
    RunResult r = sys.run();
    EXPECT_EQ(r.coreCycles.size(), 16u);
    for (unsigned c = 0; c < 16; ++c)
        EXPECT_EQ(sys.memory().read(p.symbol("slots") + 8 * c, 8),
                  uint64_t(c + 1));
}

} // namespace
} // namespace xt910
