/**
 * @file
 * Unit tests for the differential-fuzzing harness itself: generator
 * determinism, reproducer round-trips, three-path agreement on a
 * sample of seeds, batch/jobs invariance, and the ddmin shrinker.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/differ.h"
#include "check/progen.h"
#include "check/shrink.h"

namespace xt910::check
{
namespace
{

GenConfig
smallCfg(uint64_t seed)
{
    GenConfig cfg;
    cfg.seed = seed;
    cfg.numItems = 24;
    return cfg;
}

TEST(Progen, DeterministicFromSeed)
{
    GenProgram a = generate(smallCfg(42));
    GenProgram b = generate(smallCfg(42));
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
        EXPECT_EQ(a.items[i].op, b.items[i].op) << "item " << i;
        EXPECT_EQ(a.items[i].f, b.items[i].f) << "item " << i;
    }
}

TEST(Progen, DifferentSeedsDiffer)
{
    GenProgram a = generate(smallCfg(1));
    GenProgram b = generate(smallCfg(2));
    bool anyDiff = a.items.size() != b.items.size();
    for (size_t i = 0; !anyDiff && i < a.items.size(); ++i)
        anyDiff = a.items[i].op != b.items[i].op ||
                  a.items[i].f != b.items[i].f;
    EXPECT_TRUE(anyDiff);
}

TEST(Progen, EveryOpNameAssembles)
{
    // Force one item of every op the generator knows, with awkward
    // entropy values, and check the program still assembles and halts
    // deterministically on the reference path.
    GenProgram p;
    p.cfg = smallCfg(7);
    unsigned idx = 0;
    for (const std::string &op : opNames()) {
        GenItem it;
        it.op = op;
        it.f = {idx * 0x9e3779b97f4a7c15ull, ~uint64_t(idx), 0xffffffffffffffffull,
                idx};
        p.items.push_back(it);
        ++idx;
    }
    ArchSnapshot s = runIss(p, true);
    EXPECT_TRUE(s.ran);
    EXPECT_TRUE(s.halted);
}

TEST(Progen, ReproducerRoundTrip)
{
    GenProgram p = generate(smallCfg(99));
    p.expectHash = 0xdeadbeefcafef00dull;
    p.hasExpectHash = true;

    std::ostringstream os;
    dumpReproducer(os, p);

    std::istringstream is(os.str());
    GenProgram q;
    std::string err;
    ASSERT_TRUE(parseReproducer(is, q, err)) << err;

    EXPECT_EQ(p.cfg.seed, q.cfg.seed);
    EXPECT_EQ(p.cfg.vlenBits, q.cfg.vlenBits);
    EXPECT_EQ(p.cfg.dataBytes, q.cfg.dataBytes);
    EXPECT_EQ(p.expectHash, q.expectHash);
    EXPECT_EQ(p.hasExpectHash, q.hasExpectHash);
    ASSERT_EQ(p.items.size(), q.items.size());
    for (size_t i = 0; i < p.items.size(); ++i) {
        EXPECT_EQ(p.items[i].op, q.items[i].op) << "item " << i;
        EXPECT_EQ(p.items[i].f, q.items[i].f) << "item " << i;
    }
}

TEST(Progen, ParseRejectsGarbage)
{
    std::istringstream is("not a reproducer\n");
    GenProgram q;
    std::string err;
    EXPECT_FALSE(parseReproducer(is, q, err));
    EXPECT_FALSE(err.empty());
}

TEST(Differ, ThreePathAgreementSampleSeeds)
{
    for (uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
        DiffResult r = checkProgram(generate(smallCfg(seed)));
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.what;
    }
}

TEST(Differ, ThreePathAgreementOtherVlens)
{
    for (unsigned vlen : {64u, 256u}) {
        GenConfig cfg = smallCfg(21);
        cfg.vlenBits = vlen;
        DiffResult r = checkProgram(generate(cfg));
        EXPECT_TRUE(r.ok) << "vlen " << vlen << ": " << r.what;
    }
}

TEST(Differ, BatchInvariantUnderJobs)
{
    std::vector<GenProgram> progs;
    for (uint64_t seed = 50; seed < 58; ++seed)
        progs.push_back(generate(smallCfg(seed)));
    std::vector<ArchSnapshot> one = runBatch(progs, 1);
    std::vector<ArchSnapshot> four = runBatch(progs, 4);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i)
        EXPECT_TRUE(one[i] == four[i])
            << "program " << i << ": " << describeDiff(one[i], four[i]);
}

TEST(Differ, DescribeDiffPinpointsField)
{
    ArchSnapshot a, b;
    a.ran = b.ran = true;
    EXPECT_EQ(describeDiff(a, b), "identical");
    b.x[5] = 0x1234;
    EXPECT_NE(describeDiff(a, b).find("x5"), std::string::npos);
}

TEST(Differ, GoldenHashMismatchIsReported)
{
    GenProgram p = generate(smallCfg(33));
    p.expectHash = 1; // certainly wrong
    p.hasExpectHash = true;
    DiffResult r = checkProgram(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.what.find("golden hash"), std::string::npos);
}

TEST(Shrink, MinimizesToSingleCulpritItem)
{
    GenProgram p = generate(smallCfg(77));
    ASSERT_GT(p.items.size(), 4u);
    // Mark one specific item as the "bug": the failure predicate is
    // simply "the program still contains it".
    const size_t culprit = p.items.size() / 2;
    const std::string op = p.items[culprit].op;
    const std::array<uint64_t, 4> f = p.items[culprit].f;
    auto fails = [&](const GenProgram &q) {
        for (const GenItem &it : q.items)
            if (it.op == op && it.f == f)
                return true;
        return false;
    };
    GenProgram m = shrinkProgram(p, fails);
    EXPECT_TRUE(fails(m));
    // ddmin with a one-item predicate must reach exactly one item.
    EXPECT_EQ(m.items.size(), 1u);
}

TEST(Shrink, ShrunkProgramStillRuns)
{
    GenProgram p = generate(smallCfg(78));
    auto fails = [&](const GenProgram &q) { return q.items.size() >= 3; };
    GenProgram m = shrinkProgram(p, fails);
    EXPECT_GE(m.items.size(), 3u);
    ArchSnapshot s = runIss(m, true);
    EXPECT_TRUE(s.ran);
}

} // namespace
} // namespace xt910::check
