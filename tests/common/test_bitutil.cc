#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/random.h"

namespace xt910
{

TEST(BitUtil, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(bit(0x8000000000000000ull, 63), 1u);
    EXPECT_EQ(bit(0x8000000000000000ull, 62), 0u);
}

TEST(BitUtil, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xa), 0xa0u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
    // Field wider than value is masked.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1f), 0xfu);
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(sext(0xfff, 12), -1);
    EXPECT_EQ(sext(0x7ff, 12), 2047);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0, 12), 0);
    EXPECT_EQ(sext(0xffffffff, 32), -1);
}

TEST(BitUtil, ZeroExtendAndMask)
{
    EXPECT_EQ(zext(0xffffffffffffffffull, 32), 0xffffffffull);
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(BitUtil, Pow2AndLog2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(64), 6u);
    EXPECT_EQ(log2Floor(65), 6u);
    EXPECT_EQ(log2Ceil(64), 6u);
    EXPECT_EQ(log2Ceil(65), 7u);
    EXPECT_EQ(log2Ceil(1), 0u);
}

TEST(BitUtil, PopCountLeadingBits)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~0ull), 64u);
    EXPECT_EQ(countLeadingZeros(0), 64u);
    EXPECT_EQ(countLeadingZeros(1), 63u);
    EXPECT_EQ(countLeadingZeros(0x8000000000000000ull), 0u);
    EXPECT_EQ(countLeadingOnes(~0ull), 64u);
    EXPECT_EQ(countLeadingOnes(0xc000000000000000ull), 2u);
}

TEST(BitUtil, ByteSwap)
{
    EXPECT_EQ(byteSwap64(0x0102030405060708ull), 0x0807060504030201ull);
    EXPECT_EQ(byteSwap64(byteSwap64(0xdeadbeefcafebabeull)),
              0xdeadbeefcafebabeull);
}

TEST(BitUtil, SextInverseOfZextProperty)
{
    Xorshift64 rng(1234);
    for (int i = 0; i < 1000; ++i) {
        unsigned n = 1 + rng.below(63);
        uint64_t v = rng.next();
        int64_t s = sext(v, n);
        // Re-truncating a sign-extended value is the identity.
        EXPECT_EQ(zext(uint64_t(s), n), zext(v, n));
    }
}

TEST(RandomGen, DeterministicAndBounded)
{
    Xorshift64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Xorshift64 c(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.below(10), 10u);
        uint64_t r = c.range(5, 9);
        EXPECT_GE(r, 5u);
        EXPECT_LE(r, 9u);
        double d = c.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

} // namespace xt910
