/**
 * DOM-parser tests for json::parse — exact integer preservation,
 * escape/surrogate decoding, ordered object members, typed accessors,
 * and rejection of malformed documents (same grammar as
 * json::validate, which the rest of the suite already exercises).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace xt910
{
namespace json
{

TEST(JsonParse, ScalarKindsAndValues)
{
    Value v;
    ASSERT_TRUE(parse("null", v));
    EXPECT_TRUE(v.isNull());

    ASSERT_TRUE(parse("true", v));
    EXPECT_TRUE(v.isBool());
    EXPECT_TRUE(v.boolean);

    ASSERT_TRUE(parse("-42", v));
    ASSERT_TRUE(v.isNumber());
    EXPECT_TRUE(v.isInteger);
    EXPECT_EQ(v.integer, -42);
    EXPECT_DOUBLE_EQ(v.number, -42.0);

    ASSERT_TRUE(parse("2.5e3", v));
    ASSERT_TRUE(v.isNumber());
    EXPECT_FALSE(v.isInteger);
    EXPECT_DOUBLE_EQ(v.number, 2500.0);

    ASSERT_TRUE(parse("\"hi\"", v));
    ASSERT_TRUE(v.isString());
    EXPECT_EQ(v.string, "hi");
}

TEST(JsonParse, LargeIntegersSurviveExactly)
{
    // Doubles lose precision past 2^53; the stats documents carry
    // cycle counts that can exceed that, so integers are kept exact.
    Value v;
    ASSERT_TRUE(parse("9007199254740993", v)); // 2^53 + 1
    ASSERT_TRUE(v.isInteger);
    EXPECT_EQ(v.integer, 9007199254740993ll);
    EXPECT_EQ(v.asU64(), 9007199254740993ull);

    ASSERT_TRUE(parse("-9223372036854775808", v)); // INT64_MIN
    ASSERT_TRUE(v.isInteger);
    EXPECT_EQ(v.integer, INT64_MIN);
}

TEST(JsonParse, StringEscapes)
{
    Value v;
    ASSERT_TRUE(parse(R"("a\"b\\c\nd\te\u0041")", v));
    EXPECT_EQ(v.string, "a\"b\\c\nd\teA");

    // Non-ASCII BMP escape -> UTF-8.
    ASSERT_TRUE(parse(R"("\u00e9")", v));
    EXPECT_EQ(v.string, "\xc3\xa9");

    // Surrogate pair -> one astral code point (U+1F600).
    ASSERT_TRUE(parse(R"("\ud83d\ude00")", v));
    EXPECT_EQ(v.string, "\xf0\x9f\x98\x80");
}

TEST(JsonParse, ObjectsKeepMemberOrder)
{
    Value v;
    ASSERT_TRUE(parse(R"({"z": 1, "a": 2, "m": 3})", v));
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.members[0].first, "z");
    EXPECT_EQ(v.members[1].first, "a");
    EXPECT_EQ(v.members[2].first, "m");

    const Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->asI64(), 2);
    EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(JsonParse, NestedStructure)
{
    Value v;
    ASSERT_TRUE(parse(
        R"({"jobs": [{"id": "j1", "ok": true}, {"id": "j2"}], "n": 2})",
        v));
    const Value *jobs = v.find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_TRUE(jobs->isArray());
    ASSERT_EQ(jobs->elements.size(), 2u);
    EXPECT_EQ(jobs->elements[0].find("id")->asString(), "j1");
    EXPECT_TRUE(jobs->elements[0].find("ok")->asBool());
    EXPECT_EQ(jobs->elements[1].find("ok"), nullptr);
    EXPECT_EQ(v.find("n")->asU64(), 2u);
}

TEST(JsonParse, AccessorsReturnDefaultsOnKindMismatch)
{
    Value v;
    ASSERT_TRUE(parse("\"text\"", v));
    EXPECT_EQ(v.asU64(7), 7u);
    EXPECT_EQ(v.asBool(true), true);
    ASSERT_TRUE(parse("12", v));
    EXPECT_EQ(v.asString("dflt"), "dflt");
    EXPECT_EQ(v.asDouble(), 12.0);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    Value v;
    std::string err;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01",
          "\"unterminated", "{\"a\":1} trailing", "[1 2]",
          "\"bad\\escape\"", "\"\\ud83d\"" /* lone surrogate */}) {
        err.clear();
        EXPECT_FALSE(parse(bad, v, &err)) << "input: " << bad;
        EXPECT_FALSE(err.empty()) << "input: " << bad;
    }
}

TEST(JsonParse, AgreesWithValidate)
{
    // Same grammar, two entry points: anything validate accepts must
    // parse, and vice versa.
    for (const char *doc :
         {"{}", "[]", "[1, 2.5, \"s\", null, true]",
          R"({"a": {"b": [false]}})", "-0.5e-2"}) {
        Value v;
        EXPECT_EQ(validate(doc), parse(doc, v)) << doc;
        EXPECT_TRUE(parse(doc, v)) << doc;
    }
}

} // namespace json
} // namespace xt910
