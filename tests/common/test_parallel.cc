/**
 * Run-farm primitive tests: parallelFor covers every index exactly
 * once at any job count, propagates worker exceptions, and resolveJobs
 * honours the explicit-request > XT910_JOBS > fallback chain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace xt910
{

TEST(ParallelFor, CoversEveryIndexOnce)
{
    for (unsigned jobs : {1u, 2u, 7u}) {
        std::vector<std::atomic<int>> seen(101);
        for (auto &s : seen)
            s = 0;
        parallelFor(seen.size(), jobs,
                    [&](size_t i) { seen[i].fetch_add(1); });
        for (size_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i].load(), 1) << "index " << i << " jobs "
                                         << jobs;
    }
}

TEST(ParallelFor, ZeroItemsIsANoop)
{
    bool ran = false;
    parallelFor(0, 8, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, SerialPathRunsInline)
{
    // jobs <= 1 must not spawn threads: side effects happen in order.
    std::vector<size_t> order;
    parallelFor(5, 1, [&](size_t i) { order.push_back(i); });
    std::vector<size_t> want{0, 1, 2, 3, 4};
    EXPECT_EQ(order, want);
}

TEST(ParallelFor, PropagatesWorkerExceptions)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [&](size_t i) {
                                 if (i == 9)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // Serial path too.
    EXPECT_THROW(parallelFor(3, 1,
                             [&](size_t) {
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ResolveJobs, ExplicitRequestWins)
{
    setenv("XT910_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(3), 3u);
    unsetenv("XT910_JOBS");
}

TEST(ResolveJobs, EnvironmentThenFallback)
{
    setenv("XT910_JOBS", "6", 1);
    EXPECT_EQ(resolveJobs(0), 6u);
    unsetenv("XT910_JOBS");
    EXPECT_EQ(resolveJobs(0), 1u);      // default fallback: serial
    EXPECT_EQ(resolveJobs(0, 4), 4u);   // explicit fallback
    EXPECT_GE(resolveJobs(0, 0), 1u);   // fallback 0 = hardware
}

TEST(HardwareJobs, NeverZero)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

} // namespace xt910
