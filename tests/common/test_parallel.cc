/**
 * Run-farm primitive tests: parallelFor covers every index exactly
 * once at any job count, propagates worker exceptions, and resolveJobs
 * honours the explicit-request > XT910_JOBS > fallback chain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace xt910
{

TEST(ParallelFor, CoversEveryIndexOnce)
{
    for (unsigned jobs : {1u, 2u, 7u}) {
        std::vector<std::atomic<int>> seen(101);
        for (auto &s : seen)
            s = 0;
        parallelFor(seen.size(), jobs,
                    [&](size_t i) { seen[i].fetch_add(1); });
        for (size_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i].load(), 1) << "index " << i << " jobs "
                                         << jobs;
    }
}

TEST(ParallelFor, ZeroItemsIsANoop)
{
    bool ran = false;
    parallelFor(0, 8, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, SerialPathRunsInline)
{
    // jobs <= 1 must not spawn threads: side effects happen in order.
    std::vector<size_t> order;
    parallelFor(5, 1, [&](size_t i) { order.push_back(i); });
    std::vector<size_t> want{0, 1, 2, 3, 4};
    EXPECT_EQ(order, want);
}

TEST(ParallelFor, PropagatesWorkerExceptions)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [&](size_t i) {
                                 if (i == 9)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // Serial path too.
    EXPECT_THROW(parallelFor(3, 1,
                             [&](size_t) {
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ResolveJobs, ExplicitRequestWins)
{
    setenv("XT910_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(3), 3u);
    unsetenv("XT910_JOBS");
}

TEST(ResolveJobs, EnvironmentThenFallback)
{
    setenv("XT910_JOBS", "6", 1);
    EXPECT_EQ(resolveJobs(0), 6u);
    unsetenv("XT910_JOBS");
    EXPECT_EQ(resolveJobs(0), 1u);      // default fallback: serial
    EXPECT_EQ(resolveJobs(0, 4), 4u);   // explicit fallback
    EXPECT_GE(resolveJobs(0, 0), 1u);   // fallback 0 = hardware
}

TEST(ResolveJobs, MalformedEnvironmentIsAnError)
{
    // A typo'd XT910_JOBS must not silently serialize a campaign.
    for (const char *bad : {"banana", "0", "-3", "4x", "2.5", " 8"}) {
        setenv("XT910_JOBS", bad, 1);
        EXPECT_THROW(resolveJobs(0), std::invalid_argument)
            << "XT910_JOBS='" << bad << "'";
    }
    unsetenv("XT910_JOBS");
}

TEST(ResolveJobs, ExplicitRequestBypassesBadEnvironment)
{
    // --jobs N wins before the environment is even looked at.
    setenv("XT910_JOBS", "banana", 1);
    EXPECT_EQ(resolveJobs(3), 3u);
    unsetenv("XT910_JOBS");
}

TEST(ResolveJobs, EmptyEnvironmentCountsAsUnset)
{
    setenv("XT910_JOBS", "", 1);
    EXPECT_EQ(resolveJobs(0, 4), 4u);
    unsetenv("XT910_JOBS");
}

TEST(RunHardened, RetryExhaustionKeepsLastErrorAndAttemptCount)
{
    // A job that fails every attempt must report attempts ==
    // 1 + retries and carry the *last* attempt's message, not the
    // first's.
    FarmPolicy pol;
    pol.retries = 2;
    pol.backoffMs = 1;
    std::atomic<unsigned> calls{0};
    auto reports = runHardened(1, 1, pol, [&](size_t, JobContext &) {
        unsigned c = calls.fetch_add(1);
        throw std::runtime_error("attempt-" + std::to_string(c));
    });
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].status, JobStatus::Failed);
    EXPECT_EQ(reports[0].attempts, 3u);
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(reports[0].error, "attempt-2");
}

TEST(RunHardened, DeadlineOnFinalRetryReportsTimeout)
{
    // Failure mode can change across attempts; the report reflects the
    // final one. Plain failures first, then a deadline overrun on the
    // last retry => TimedOut.
    FarmPolicy pol;
    pol.retries = 2;
    pol.backoffMs = 0;
    auto reports = runHardened(1, 1, pol, [&](size_t, JobContext &ctx) {
        if (ctx.attempt < 2)
            throw std::runtime_error("transient");
        throw FarmTimeout("deadline during final retry");
    });
    EXPECT_EQ(reports[0].status, JobStatus::TimedOut);
    EXPECT_EQ(reports[0].attempts, 3u);
    EXPECT_EQ(reports[0].error, "deadline during final retry");
}

TEST(RunHardened, TimeoutThenSuccessIsOk)
{
    // The converse: a timeout on the first attempt must not taint a
    // succeeding retry.
    FarmPolicy pol;
    pol.retries = 1;
    pol.backoffMs = 0;
    auto reports = runHardened(1, 1, pol, [&](size_t, JobContext &ctx) {
        if (ctx.attempt == 0)
            throw FarmTimeout("slow first attempt");
    });
    EXPECT_EQ(reports[0].status, JobStatus::Ok);
    EXPECT_EQ(reports[0].attempts, 2u);
    EXPECT_TRUE(reports[0].error.empty());
}

TEST(RunHardened, SalvagesWhenEveryJobFails)
{
    // Even with every job failing (mixed reasons), runHardened must
    // not throw and must report each job individually, in submission
    // order, at any worker count.
    FarmPolicy pol;
    pol.retries = 0;
    pol.backoffMs = 0;
    for (unsigned jobs : {1u, 4u}) {
        auto reports =
            runHardened(8, jobs, pol, [&](size_t i, JobContext &) {
                if (i % 2)
                    throw FarmTimeout("t" + std::to_string(i));
                throw std::runtime_error("f" + std::to_string(i));
            });
        ASSERT_EQ(reports.size(), 8u);
        for (size_t i = 0; i < reports.size(); ++i) {
            EXPECT_EQ(reports[i].status, i % 2 ? JobStatus::TimedOut
                                               : JobStatus::Failed);
            EXPECT_EQ(reports[i].attempts, 1u);
            EXPECT_EQ(reports[i].error,
                      (i % 2 ? "t" : "f") + std::to_string(i));
        }
    }
}

TEST(HardwareJobs, NeverZero)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

} // namespace xt910
