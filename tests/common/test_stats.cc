#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace xt910
{

TEST(Stats, CounterBasics)
{
    StatGroup g("core0");
    Counter c(g, "commits", "committed instructions");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.set(5);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupRegistrationAndDump)
{
    StatGroup g("lsu");
    Counter a(g, "loads", "load count");
    Counter b(g, "stores", "store count");
    a += 3;
    b += 4;
    EXPECT_EQ(g.counters().size(), 2u);
    EXPECT_EQ(g.find("loads"), &a);
    EXPECT_EQ(g.find("nothere"), nullptr);

    std::ostringstream os;
    g.dump(os);
    std::string s = os.str();
    EXPECT_NE(s.find("lsu.loads"), std::string::npos);
    EXPECT_NE(s.find("3"), std::string::npos);
    EXPECT_NE(s.find("store count"), std::string::npos);
}

TEST(Stats, ResetAll)
{
    StatGroup g("x");
    Counter a(g, "a", "");
    Counter b(g, "b", "");
    a += 7;
    b += 9;
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

} // namespace xt910
