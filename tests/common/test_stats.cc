#include <gtest/gtest.h>

#include <sstream>

#include "common/json.h"
#include "common/stats.h"

namespace xt910
{

TEST(Stats, CounterBasics)
{
    StatGroup g("core0");
    Counter c(g, "commits", "committed instructions");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.set(5);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupRegistrationAndDump)
{
    StatGroup g("lsu");
    Counter a(g, "loads", "load count");
    Counter b(g, "stores", "store count");
    a += 3;
    b += 4;
    EXPECT_EQ(g.counters().size(), 2u);
    EXPECT_EQ(g.find("loads"), &a);
    EXPECT_EQ(g.find("nothere"), nullptr);

    std::ostringstream os;
    g.dump(os);
    std::string s = os.str();
    EXPECT_NE(s.find("lsu.loads"), std::string::npos);
    EXPECT_NE(s.find("3"), std::string::npos);
    EXPECT_NE(s.find("store count"), std::string::npos);
}

TEST(Stats, ResetAll)
{
    StatGroup g("x");
    Counter a(g, "a", "");
    Counter b(g, "b", "");
    a += 7;
    b += 9;
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Stats, GroupJsonDump)
{
    StatGroup g("l1d");
    Counter h(g, "hits", "");
    Counter m(g, "misses", "");
    h += 12;
    m += 3;
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{\"hits\": 12, \"misses\": 3}");
    EXPECT_TRUE(json::validate(os.str()));
}

TEST(Stats, SortedDumpIsDeterministic)
{
    StatGroup b("beta"), a("alpha"), c("alpha.sub");
    Counter cb(b, "x", "");
    Counter ca(a, "y", "");
    Counter cc(c, "z", "");
    cb += 1;
    ca += 2;
    cc += 3;

    // Registration order must not matter.
    std::ostringstream o1, o2;
    dumpStatsSorted(o1, {&b, &a, &c});
    dumpStatsSorted(o2, {&c, &b, &a});
    EXPECT_EQ(o1.str(), o2.str());
    // Sorted: alpha before alpha.sub before beta.
    size_t pa = o1.str().find("alpha.y");
    size_t ps = o1.str().find("alpha.sub.z");
    size_t pb = o1.str().find("beta.x");
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(ps, std::string::npos);
    ASSERT_NE(pb, std::string::npos);
    EXPECT_LT(pa, ps);
    EXPECT_LT(ps, pb);
}

TEST(Stats, HierarchicalJson)
{
    StatGroup bp("core0.bp"), l1("core0.l1d"), dram("dram");
    Counter c1(bp, "hits", "");
    Counter c2(l1, "misses", "");
    Counter c3(dram, "reads", "");
    c1 += 1;
    c2 += 2;
    c3 += 3;

    std::ostringstream os;
    dumpStatsJson(os, {&dram, &l1, &bp}, /*pretty=*/false);
    std::string s = os.str();
    EXPECT_TRUE(json::validate(s)) << s;
    // Dotted names become nesting: one "core0" object with both subs.
    EXPECT_NE(s.find("\"core0\""), std::string::npos);
    EXPECT_NE(s.find("\"bp\""), std::string::npos);
    EXPECT_NE(s.find("\"l1d\""), std::string::npos);
    EXPECT_EQ(s.find("core0.bp"), std::string::npos);

    // Pretty and compact forms carry the same content.
    std::ostringstream op;
    dumpStatsJson(op, {&dram, &l1, &bp}, /*pretty=*/true);
    EXPECT_TRUE(json::validate(op.str())) << op.str();
}

} // namespace xt910
