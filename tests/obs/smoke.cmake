# CLI observability smoke, run as a ctest script:
#
#   cmake -DXT910_RUN=<path-to-xt910-run> -DWORK_DIR=<dir> -P smoke.cmake
#
# Drives the simulator with every observability flag on a small
# workload, then validates the artifacts: the JSONL stats stream parses
# line by line (cmake's string(JSON)), the interval instruction deltas
# sum to the summary's retired-instruction count, and the Kanata trace
# is well-formed (header, records for at least one µop per retired
# instruction, retire records present).

if(NOT XT910_RUN OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DXT910_RUN=... -DWORK_DIR=... -P smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(JSON_OUT "${WORK_DIR}/puwmod.jsonl")
set(TRACE_OUT "${WORK_DIR}/puwmod.kanata")

execute_process(
    COMMAND "${XT910_RUN}"
        --stats-json=${JSON_OUT} --stats-interval=1000
        --trace-konata=${TRACE_OUT} --topdown puwmod
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "xt910-run failed (rc=${run_rc}):\n${run_out}\n${run_err}")
endif()
if(NOT run_out MATCHES "checksum   : ok")
    message(FATAL_ERROR "workload checksum not ok:\n${run_out}")
endif()
if(NOT run_out MATCHES "topdown c0 : retiring [0-9.]+%")
    message(FATAL_ERROR "--topdown summary missing:\n${run_out}")
endif()

# ---- JSONL stats stream ------------------------------------------------
file(STRINGS "${JSON_OUT}" json_lines)
list(LENGTH json_lines n_lines)
if(n_lines LESS 2)
    message(FATAL_ERROR "expected interval records + summary, got ${n_lines} lines")
endif()

set(delta_sum 0)
set(summary_insts "")
foreach(line IN LISTS json_lines)
    string(JSON type ERROR_VARIABLE jerr GET "${line}" type)
    if(jerr)
        message(FATAL_ERROR "unparseable JSONL line (${jerr}): ${line}")
    endif()
    if(type STREQUAL "interval" OR type STREQUAL "final_interval")
        string(JSON d GET "${line}" d_insts)
        math(EXPR delta_sum "${delta_sum} + ${d}")
    elseif(type STREQUAL "summary")
        string(JSON summary_insts GET "${line}" insts)
        string(JSON ok GET "${line}" checksum_ok)
        if(NOT ok STREQUAL "ON")  # string(JSON) maps true to ON
            message(FATAL_ERROR "summary checksum_ok != true: ${ok}")
        endif()
        # The hierarchical stats object must be present and nest.
        string(JSON uops GET "${line}" stats core0 uops)
        if(uops LESS 1)
            message(FATAL_ERROR "summary stats.core0.uops missing")
        endif()
        string(JSON td GET "${line}" stats core0 topdown slots_retiring)
        if(NOT td EQUAL uops)
            message(FATAL_ERROR "topdown slots_retiring ${td} != uops ${uops}")
        endif()
    else()
        message(FATAL_ERROR "unknown record type '${type}': ${line}")
    endif()
endforeach()

if(summary_insts STREQUAL "")
    message(FATAL_ERROR "no summary line in ${JSON_OUT}")
endif()
if(NOT delta_sum EQUAL summary_insts)
    message(FATAL_ERROR "interval d_insts sum ${delta_sum} != summary insts ${summary_insts}")
endif()

# ---- Kanata trace ------------------------------------------------------
file(STRINGS "${TRACE_OUT}" trace_head LIMIT_COUNT 2)
list(GET trace_head 0 first_line)
if(NOT first_line STREQUAL "Kanata\t0004")
    message(FATAL_ERROR "bad Kanata header: '${first_line}'")
endif()
list(GET trace_head 1 second_line)
if(NOT second_line MATCHES "^C=\t[0-9]+$")
    message(FATAL_ERROR "expected initial cycle record, got '${second_line}'")
endif()

# Count instruction-start and retire records; µops >= instructions and
# every started µop must retire.
file(STRINGS "${TRACE_OUT}" i_recs REGEX "^I\t")
file(STRINGS "${TRACE_OUT}" r_recs REGEX "^R\t")
list(LENGTH i_recs n_i)
list(LENGTH r_recs n_r)
if(n_i LESS summary_insts)
    message(FATAL_ERROR "trace has ${n_i} µop records for ${summary_insts} instructions")
endif()
if(NOT n_i EQUAL n_r)
    message(FATAL_ERROR "µop starts (${n_i}) != retires (${n_r})")
endif()

message(STATUS "obs smoke ok: ${summary_insts} insts, ${n_i} traced µops, ${n_lines} JSONL lines")
