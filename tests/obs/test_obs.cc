/**
 * Observability subsystem tests: JSON helpers, the interval sampler's
 * delta math, the Konata pipeline tracer (well-formedness, stage
 * ordering, flush labels), top-down retire-slot accounting invariants,
 * and the guest-visible HPM counters.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "common/json.h"
#include "core/system.h"
#include "func/csr.h"
#include "obs/konata.h"
#include "obs/sampler.h"
#include "obs/topdown.h"

namespace xt910
{

using namespace reg;

namespace
{

/** Run a single-core system over @p a and return the result. */
RunResult
run(Assembler &a, System &sys)
{
    sys.loadProgram(a.assemble());
    return sys.run();
}

/** An unpredictable-branch + load loop: exercises every top-down
 *  category (retiring, bad-spec from mispredicts, backend-mem from
 *  loads, backend-core from the mul chain). */
Assembler
mixedKernel(int iters)
{
    Assembler a;
    a.la(s1, "data");
    a.li(s2, 0x1234567);
    a.li(s0, iters);
    a.label("loop");
    // LCG step: s2 = s2 * 6364136223846793005 + 1442695040888963407
    a.li(t3, 0x5851f42d4c957f2dULL);
    a.li(t4, 0x14057b7ef767814fULL);
    a.mul(s2, s2, t3);
    a.add(s2, s2, t4);
    a.srli(t0, s2, 60);
    a.andi(t0, t0, 1);
    a.beqz(t0, "skip"); // data-dependent: mispredicts often
    a.addi(a1, a1, 1);
    a.label("skip");
    a.ld(t1, s1, 0);    // backend-mem exposure
    a.mul(t2, t1, s2);  // backend-core latency chain
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("data");
    a.dword(7);
    return a;
}

} // namespace

// ---------------------------------------------------------------- JSON

TEST(Json, EscapeSpecials)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, ValidateAcceptsAndRejects)
{
    EXPECT_TRUE(json::validate("{}"));
    EXPECT_TRUE(json::validate("{\"a\": [1, 2.5, -3e2], \"b\": null}"));
    EXPECT_TRUE(json::validate("  \"str\\n\"  "));
    EXPECT_TRUE(json::validate("true"));

    std::string err;
    EXPECT_FALSE(json::validate("{", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::validate("{\"a\": 1,}"));
    EXPECT_FALSE(json::validate("{\"a\": 1} trailing"));
    EXPECT_FALSE(json::validate("{'a': 1}"));
    EXPECT_FALSE(json::validate(""));
}

// ------------------------------------------------------------- Sampler

TEST(Sampler, IntervalDeltaMath)
{
    StatGroup g("core0");
    Counter a(g, "a", "");
    Counter insts(g, "insts", "");

    std::ostringstream os;
    obs::IntervalSampler smp(os, 100);
    smp.addGroup(&g);

    a += 5;
    smp.tick(100, 10);  // fires: d a=5, d_insts=10
    a += 2;
    smp.tick(150, 12);  // below nextAt (200): no sample
    a += 3;
    smp.tick(250, 20);  // fires: d a=5, d_insts=10
    a += 1;
    smp.finish(300, 30); // final partial: d a=1, d_insts=10

    EXPECT_EQ(smp.samplesEmitted(), 3u);

    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    for (const auto &l : lines) {
        std::string err;
        EXPECT_TRUE(json::validate(l, &err)) << l << ": " << err;
    }

    EXPECT_NE(lines[0].find("\"type\": \"interval\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"cycle\": 100"), std::string::npos);
    EXPECT_NE(lines[0].find("\"d_insts\": 10"), std::string::npos);
    EXPECT_NE(lines[0].find("\"core0.a\": 5"), std::string::npos);

    EXPECT_NE(lines[1].find("\"cycle\": 250"), std::string::npos);
    EXPECT_NE(lines[1].find("\"start_cycle\": 100"), std::string::npos);
    EXPECT_NE(lines[1].find("\"d_insts\": 10"), std::string::npos);
    EXPECT_NE(lines[1].find("\"core0.a\": 5"), std::string::npos);

    EXPECT_NE(lines[2].find("\"type\": \"final_interval\""),
              std::string::npos);
    EXPECT_NE(lines[2].find("\"d_insts\": 10"), std::string::npos);
    EXPECT_NE(lines[2].find("\"core0.a\": 1"), std::string::npos);
    // Untouched counters are elided from the delta object.
    EXPECT_EQ(lines[2].find("core0.insts"), std::string::npos);
}

TEST(Sampler, FinishIsIdempotentAndDeltasSum)
{
    StatGroup g("g");
    Counter c(g, "c", "");
    std::ostringstream os;
    obs::IntervalSampler smp(os, 10);
    smp.addGroup(&g);
    uint64_t n = 0;
    for (Cycle cyc = 1; cyc <= 95; ++cyc) {
        c += 2;
        smp.tick(cyc, ++n);
    }
    smp.finish(95, n);
    smp.finish(95, n); // second call must be a no-op
    // Sum of d_insts over every line equals the final count.
    std::istringstream in(os.str());
    std::string line;
    uint64_t sum = 0;
    while (std::getline(in, line)) {
        auto p = line.find("\"d_insts\": ");
        ASSERT_NE(p, std::string::npos) << line;
        sum += std::stoull(line.substr(p + 11));
    }
    EXPECT_EQ(sum, n);
}

// -------------------------------------------------------------- Konata

namespace
{

/** Parsed view of a Kanata log: per-id stage entry cycles. */
struct KanataLog
{
    std::map<uint64_t, std::vector<std::pair<std::string, Cycle>>> starts;
    std::map<uint64_t, Cycle> retired;
    std::map<uint64_t, std::vector<std::string>> labels;
    uint64_t nIds = 0;
    bool headerOk = false;
    bool cyclesMonotone = true;
};

KanataLog
parseKanata(const std::string &text)
{
    KanataLog log;
    std::istringstream in(text);
    std::string line;
    Cycle cur = 0;
    bool first = true;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        std::getline(ls, tag, '\t');
        if (first) {
            log.headerOk = (tag == "Kanata" && line == "Kanata\t0004");
            first = false;
            continue;
        }
        if (tag == "C=") {
            ls >> cur;
        } else if (tag == "C") {
            Cycle d;
            ls >> d;
            if (d == 0)
                log.cyclesMonotone = false;
            cur += d;
        } else if (tag == "I") {
            uint64_t id;
            ls >> id;
            ++log.nIds;
            log.starts[id]; // declare
        } else if (tag == "S" || tag == "E") {
            uint64_t id, lane;
            std::string stage;
            ls >> id >> lane >> stage;
            if (tag == "S")
                log.starts[id].emplace_back(stage, cur);
        } else if (tag == "R") {
            uint64_t id;
            ls >> id;
            log.retired[id] = cur;
        } else if (tag == "L") {
            uint64_t id, type;
            ls >> id >> type;
            std::string rest;
            std::getline(ls, rest);
            log.labels[id].push_back(rest);
        }
    }
    return log;
}

} // namespace

TEST(Konata, GoldenTinyProgram)
{
    Assembler a;
    a.li(a0, 5);
    a.li(a1, 7);
    a.add(a2, a0, a1);
    a.mul(a3, a2, a0);
    a.xor_(a4, a3, a1);
    a.sub(a5, a4, a0);
    a.and_(t0, a5, a2);
    a.addi(t1, t0, 3);
    a.slli(t2, t1, 2);
    a.ebreak();

    System sys{SystemConfig{}};
    std::ostringstream os;
    obs::KonataTracer tracer(os);
    sys.core(0).tracer = &tracer;
    RunResult r = run(a, sys);
    tracer.finish();

    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_EQ(tracer.clampedEvents(), 0u);
    EXPECT_EQ(tracer.uopsRecorded(), sys.core(0).uops.value());

    KanataLog log = parseKanata(os.str());
    EXPECT_TRUE(log.headerOk) << os.str().substr(0, 40);
    EXPECT_TRUE(log.cyclesMonotone);
    EXPECT_EQ(log.nIds, tracer.uopsRecorded());
    EXPECT_EQ(log.retired.size(), log.nIds);

    const std::vector<std::string> want = {"F", "Dc", "Rn", "Ex", "Cm"};
    for (const auto &[id, stages] : log.starts) {
        ASSERT_EQ(stages.size(), want.size()) << "id " << id;
        Cycle prev = 0;
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(stages[i].first, want[i]) << "id " << id;
            EXPECT_GE(stages[i].second, prev) << "id " << id;
            prev = stages[i].second;
        }
        ASSERT_TRUE(log.retired.count(id));
        EXPECT_GE(log.retired[id], prev) << "id " << id;
        // Every µop carries a main label with its PC + disassembly.
        ASSERT_FALSE(log.labels[id].empty());
        EXPECT_NE(log.labels[id][0].find(':'), std::string::npos);
    }
}

TEST(Konata, FlushRecordOnInjectedMispredict)
{
    Assembler a = mixedKernel(50);
    System sys{SystemConfig{}};
    std::ostringstream os;
    obs::KonataTracer tracer(os);
    sys.core(0).tracer = &tracer;
    sys.core(0).injectMispredict();
    RunResult r = run(a, sys);
    tracer.finish();

    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_EQ(tracer.clampedEvents(), 0u);
    EXPECT_NE(os.str().find("flush: branch-mispredict"),
              std::string::npos);
}

// ------------------------------------------------------------ Top-down

TEST(TopDown, UnitInvariantAndIdleAttribution)
{
    obs::TopDown td("td", 4);
    // Cycle 1: two retires; cycle 3: one retire after a mem stall.
    td.onRetire(1, false, false, false);
    td.onRetire(1, false, false, false);
    td.onRetire(3, true, true, false);
    td.finalize();
    EXPECT_EQ(td.cycles(), 3u);
    EXPECT_EQ(td.slotsAccounted(), 4u * 3u);
    EXPECT_EQ(td.retiring.value(), 3u);
    // Gap before cycle 3 (2 leftover slots of cycle 1 + 4 of cycle 2)
    // charged to backend-mem; tail of cycle 3 to frontend.
    EXPECT_EQ(td.backendMem.value(), 6u);
    EXPECT_EQ(td.frontendBound.value(), 3u);
    EXPECT_EQ(td.badSpeculation.value(), 0u);
}

TEST(TopDown, SlotsSumToWidthTimesCycles)
{
    Assembler a = mixedKernel(2000);
    System sys{SystemConfig{}};
    RunResult r = run(a, sys);
    EXPECT_EQ(r.stop, StopReason::Halted);

    const XtCore &c = sys.core(0);
    EXPECT_EQ(c.topdown.slotsAccounted(),
              uint64_t(c.params().retireWidth) * c.topdown.cycles());
    EXPECT_EQ(c.topdown.cycles(), c.cycles());
    EXPECT_EQ(c.topdown.retiring.value(), c.uops.value());
    // The unpredictable branches and the load/mul chain must surface.
    EXPECT_GT(c.topdown.badSpeculation.value(), 0u);
    EXPECT_GT(c.topdown.backendMem.value() +
                  c.topdown.backendCore.value(),
              0u);
    // Summary renders percentages.
    EXPECT_NE(c.topdown.summary().find("retiring"), std::string::npos);
}

// ----------------------------------------------------------------- HPM

TEST(Hpm, GuestReadbackMatchesTimingModel)
{
    Assembler a;
    // Select event 2 (branch mispredicts) on mhpmcounter3.
    a.li(t0, int64_t(csr::hpmevent::branchMispredict));
    a.csrw(csr::mhpmevent3, t0);
    // Unpredictable-branch loop to generate mispredicts.
    a.li(s2, 0x9e3779b9);
    a.li(s0, 400);
    a.li(t3, 0x5851f42d4c957f2dULL);
    a.label("loop");
    a.mul(s2, s2, t3);
    a.addi(s2, s2, 1);
    a.srli(t0, s2, 61);
    a.andi(t0, t0, 1);
    a.beqz(t0, "skip");
    a.addi(a5, a5, 1);
    a.label("skip");
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    // Read the counters. The functional oracle runs one instruction
    // ahead of the timing core, so each read sees the state after all
    // program-order-prior instructions retired.
    a.csrr(a0, csr::mhpmcounter3);
    a.csrr(a1, csr::cycle);
    a.csrr(a2, csr::instret);
    a.csrr(a3, csr::hpmcounter3);
    a.ebreak();

    System sys{SystemConfig{}};
    RunResult r = run(a, sys);
    EXPECT_EQ(r.stop, StopReason::Halted);

    const XtCore &c = sys.core(0);
    const auto &x = sys.iss().hart(0).x;
    // No branches execute after the reads, so the read equals the
    // end-of-run mispredict total exactly.
    EXPECT_EQ(x[10], c.branchMispredicts.value() +
                         c.targetMispredicts.value());
    EXPECT_GT(x[10], 0u);
    // User-mode alias reads the same counter.
    EXPECT_EQ(x[13], x[10]);
    // cycle reads timing-model time: positive, within the run.
    EXPECT_GT(x[11], 0u);
    EXPECT_LE(x[11], r.cycles);
    // instret at the read is below the final count (reads + ebreak
    // follow it) but must be most of the program.
    EXPECT_GT(x[12], r.insts - 10);
    EXPECT_LT(x[12], r.insts);
}

TEST(Hpm, UnprogrammedCounterReadsZero)
{
    Assembler a;
    a.li(a1, 123);
    a.csrr(a0, csr::mhpmcounter3 + 2); // mhpmcounter5, no event set
    a.ebreak();
    System sys{SystemConfig{}};
    RunResult r = run(a, sys);
    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_EQ(sys.iss().hart(0).x[10], 0u);
}

TEST(Hpm, FunctionalOnlyCycleFallsBackToInstret)
{
    // A bare Iss (no timing core, no cycleSource hook) must still give
    // deterministic rdcycle: it reads the hart's own instret.
    Assembler a;
    a.li(a5, 0);
    a.addi(a5, a5, 1);
    a.addi(a5, a5, 2);
    a.csrr(a0, csr::cycle);
    a.csrr(a1, csr::instret);
    a.ebreak();
    Memory mem;
    Iss iss(mem, 1, IssOptions{});
    iss.loadProgram(a.assemble());
    iss.run(1000);
    ASSERT_TRUE(iss.halted());
    const auto &x = iss.hart(0).x;
    EXPECT_EQ(x[10], 3u); // li + addi + addi retired before the read
    EXPECT_EQ(x[11], 4u); // one more retired by the second read
}

} // namespace xt910
