/**
 * ECC / parity tests (Table I: the shared L2 "supports both ECC and
 * parity check"): fault injection, correction vs detection, and the
 * latency cost of recovery in the memory system.
 */

#include <gtest/gtest.h>

#include "mem/memsystem.h"

namespace xt910
{

TEST(Ecc, EccCacheCorrectsSingleBitErrors)
{
    CacheParams p{.name = "ecc", .sizeBytes = 4096, .assoc = 4,
                  .ecc = true};
    Cache c(p);
    c.insert(0x1000, CoherState::Exclusive, 1);
    ASSERT_TRUE(c.injectBitError(0x1000));
    EXPECT_FALSE(c.resolveError(0x1000)); // corrected, data fine
    EXPECT_EQ(c.eccCorrected.value(), 1u);
    EXPECT_EQ(c.eccDetected.value(), 0u);
    // Error cleared; a second access is clean.
    EXPECT_FALSE(c.resolveError(0x1000));
    EXPECT_EQ(c.eccCorrected.value(), 1u);
}

TEST(Ecc, ParityOnlyDetects)
{
    CacheParams p{.name = "par", .sizeBytes = 4096, .assoc = 4,
                  .ecc = false};
    Cache c(p);
    c.insert(0x2000, CoherState::Shared, 1);
    ASSERT_TRUE(c.injectBitError(0x2000));
    EXPECT_TRUE(c.resolveError(0x2000)); // detected, not correctable
    EXPECT_EQ(c.eccDetected.value(), 1u);
    EXPECT_EQ(c.eccCorrected.value(), 0u);
}

TEST(Ecc, InjectionRequiresResidentLine)
{
    Cache c(CacheParams{.name = "x", .sizeBytes = 4096, .assoc = 4});
    EXPECT_FALSE(c.injectBitError(0x5000));
}

TEST(Ecc, L2EnabledByDefaultPerTableI)
{
    MemSystemParams p;
    EXPECT_TRUE(p.l2.ecc);
    EXPECT_FALSE(p.l1d.ecc); // L1s use parity in this model
}

TEST(Ecc, L2HitWithInjectedErrorCorrectsAndCharges)
{
    MemSystemParams p;
    p.l1d.sizeBytes = 4 * 1024;
    p.l1d.assoc = 2;
    MemSystem ms(p);
    // Fill a line, evict it from L1 so it only lives in L2.
    Cycle t = ms.read(0, 0x10000, 0).done;
    for (int i = 1; i <= 2; ++i)
        t = ms.read(0, 0x10000 + Addr(i) * 2048, t + 1).done;
    ASSERT_EQ(ms.l1d(0).findLine(0x10000), nullptr);
    ASSERT_TRUE(ms.l2(0).injectBitError(0x10000));

    MemResult clean = ms.read(0, 0x20000 + 4096, t + 1); // reference
    (void)clean;
    MemResult hit = ms.read(0, 0x10000, t + 500);
    EXPECT_EQ(hit.level, ServiceLevel::L2);
    EXPECT_EQ(ms.l2(0).eccCorrected.value(), 1u);
}

} // namespace xt910
