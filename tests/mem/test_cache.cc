#include <gtest/gtest.h>

#include "mem/cache.h"

namespace xt910
{

namespace
{

CacheParams
smallCache()
{
    // 4 sets x 2 ways x 64B = 512B: easy to force conflicts.
    return CacheParams{.name = "t", .sizeBytes = 512, .assoc = 2};
}

} // namespace

TEST(CacheModel, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_EQ(c.findLine(0x1000), nullptr);
    c.insert(0x1000, CoherState::Exclusive, 1);
    ASSERT_NE(c.findLine(0x1000), nullptr);
    // Same line, different byte offset.
    ASSERT_NE(c.findLine(0x103f), nullptr);
    // Next line absent.
    EXPECT_EQ(c.findLine(0x1040), nullptr);
}

TEST(CacheModel, LruEviction)
{
    Cache c(smallCache());
    // Three conflicting lines in a 2-way set (set stride = 4*64=256).
    c.insert(0x0000, CoherState::Exclusive, 1);
    c.insert(0x0100, CoherState::Exclusive, 2);
    c.touch(0x0000, 3); // make 0x0000 MRU
    auto v = c.insert(0x0200, CoherState::Exclusive, 4);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0x0100u); // LRU evicted
    EXPECT_NE(c.findLine(0x0000), nullptr);
    EXPECT_EQ(c.findLine(0x0100), nullptr);
    EXPECT_NE(c.findLine(0x0200), nullptr);
}

TEST(CacheModel, DirtyEvictionCountsWriteback)
{
    Cache c(smallCache());
    c.insert(0x0000, CoherState::Modified, 1);
    c.insert(0x0100, CoherState::Exclusive, 2);
    auto v = c.insert(0x0200, CoherState::Shared, 3);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(c.writebacks.value(), 1u);
    EXPECT_EQ(c.evictions.value(), 1u);
}

TEST(CacheModel, InvalidateAndStates)
{
    Cache c(smallCache());
    c.insert(0x40, CoherState::Modified, 1);
    EXPECT_TRUE(c.invalidate(0x40)); // dirty
    EXPECT_EQ(c.findLine(0x40), nullptr);
    EXPECT_FALSE(c.invalidate(0x40)); // already gone

    c.insert(0x80, CoherState::Exclusive, 2);
    c.setState(0x80, CoherState::Owned);
    EXPECT_EQ(c.findLine(0x80)->state, CoherState::Owned);
    EXPECT_TRUE(isDirty(CoherState::Owned));
    EXPECT_FALSE(isDirty(CoherState::Shared));
}

TEST(CacheModel, PrefetchAccuracyTracking)
{
    Cache c(smallCache());
    c.insert(0x0000, CoherState::Exclusive, 1, /*wasPrefetch=*/true);
    c.insert(0x0040, CoherState::Exclusive, 1, /*wasPrefetch=*/true);
    EXPECT_EQ(c.prefetchFills.value(), 2u);
    c.touch(0x0000, 2); // demand touches one prefetched line
    EXPECT_EQ(c.prefetchUseful.value(), 1u);
    c.touch(0x0000, 3); // second touch does not double count
    EXPECT_EQ(c.prefetchUseful.value(), 1u);
}

TEST(CacheModel, InvalidateAll)
{
    Cache c(smallCache());
    for (Addr a = 0; a < 512; a += 64)
        c.insert(a, CoherState::Shared, 1);
    c.invalidateAll();
    for (Addr a = 0; a < 512; a += 64)
        EXPECT_EQ(c.findLine(a), nullptr);
}

TEST(CacheModel, GeometryValidation)
{
    CacheParams bad;
    bad.sizeBytes = 1000; // not divisible into sets
    bad.assoc = 3;
    EXPECT_THROW(Cache{bad}, std::logic_error);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometry, TableIConfigurations)
{
    // Table I: L1 of 32/64 KB; L2 of 256 KB..8 MB. All must construct
    // and behave (insert + find across many lines).
    auto [size, assoc] = GetParam();
    CacheParams p{.name = "cfg", .sizeBytes = size, .assoc = assoc};
    Cache c(p);
    for (Addr a = 0; a < Addr(size) * 2; a += 64)
        c.insert(a, CoherState::Exclusive, a);
    // The most recent size/64 lines of a direct sweep survive.
    EXPECT_NE(c.findLine(Addr(size) * 2 - 64), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, CacheGeometry,
    ::testing::Values(std::pair<uint32_t, uint32_t>{32 * 1024, 4},
                      std::pair<uint32_t, uint32_t>{64 * 1024, 4},
                      std::pair<uint32_t, uint32_t>{256 * 1024, 8},
                      std::pair<uint32_t, uint32_t>{1024 * 1024, 16},
                      std::pair<uint32_t, uint32_t>{8 * 1024 * 1024, 16}));

} // namespace xt910
