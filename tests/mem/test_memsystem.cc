/**
 * Memory-system tests: hit/miss latencies, MSHR merging, MOESI
 * coherence between cores, snoop filtering, inclusive-L2 back
 * invalidation, and cross-cluster (Ncore) transfers.
 */

#include <gtest/gtest.h>

#include "mem/memsystem.h"

namespace xt910
{

namespace
{

MemSystemParams
smallParams(unsigned cores = 1)
{
    MemSystemParams p;
    p.numCores = cores;
    p.l1d.sizeBytes = 4 * 1024;
    p.l1d.assoc = 2;
    p.l1i.sizeBytes = 4 * 1024;
    p.l1i.assoc = 2;
    p.l2.sizeBytes = 64 * 1024;
    p.l2.assoc = 8;
    return p;
}

} // namespace

TEST(MemSystem, ColdMissCostsDramLatencyThenHits)
{
    MemSystem ms(smallParams());
    MemResult miss = ms.read(0, 0x1000, 100);
    EXPECT_EQ(miss.level, ServiceLevel::Dram);
    EXPECT_GE(miss.done, 100 + ms.params().dram.latency);

    MemResult hit = ms.read(0, 0x1008, miss.done + 1);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.done, miss.done + 1 + ms.params().l1d.hitLatency);
}

TEST(MemSystem, L2HitFasterThanDram)
{
    MemSystem ms(smallParams());
    // Fill a line, then evict it from tiny L1 with conflicting lines
    // (L1: 4KB/2way -> 32 sets; set stride = 32*64 = 2KB).
    MemResult first = ms.read(0, 0x10000, 0);
    Cycle t = first.done;
    for (int i = 1; i <= 2; ++i)
        t = ms.read(0, 0x10000 + Addr(i) * 2048, t + 1).done;
    EXPECT_EQ(ms.l1d(0).findLine(0x10000), nullptr) << "should be evicted";

    MemResult l2hit = ms.read(0, 0x10000, t + 1);
    EXPECT_EQ(l2hit.level, ServiceLevel::L2);
    EXPECT_LT(l2hit.done - (t + 1), ms.params().dram.latency);
}

TEST(MemSystem, InflightMissesMerge)
{
    MemSystem ms(smallParams());
    MemResult a = ms.read(0, 0x2000, 10);
    // A second access to the same line while in flight merges.
    MemResult b = ms.read(0, 0x2010, 12);
    EXPECT_EQ(b.level, ServiceLevel::Merged);
    EXPECT_LE(b.done, a.done + ms.params().busLatency);
}

TEST(MemSystem, WriteMakesLineModified)
{
    MemSystem ms(smallParams());
    ms.write(0, 0x3000, 0);
    Cache::Line *l = ms.l1d(0).findLine(0x3000);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, CoherState::Modified);
}

TEST(MemSystem, ReadSharingThenWriteUpgrade)
{
    MemSystem ms(smallParams(2));
    MemResult r0 = ms.read(0, 0x4000, 0);
    // Core 1 reads the same line: cache-to-cache service.
    MemResult r1 = ms.read(1, 0x4000, r0.done + 1);
    EXPECT_EQ(r1.level, ServiceLevel::Remote);
    EXPECT_EQ(ms.c2cTransfers.value(), 1u);
    ASSERT_NE(ms.l1d(1).findLine(0x4000), nullptr);

    // Core 1 writes: core 0's copy must be invalidated.
    ms.write(1, 0x4000, r1.done + 1);
    EXPECT_EQ(ms.l1d(0).findLine(0x4000), nullptr);
    EXPECT_EQ(ms.l1d(1).findLine(0x4000)->state, CoherState::Modified);
    EXPECT_GE(ms.upgrades.value(), 1u);
}

TEST(MemSystem, WriteMissInvalidatesRemoteModified)
{
    MemSystem ms(smallParams(2));
    MemResult w0 = ms.write(0, 0x5000, 0);
    MemResult w1 = ms.write(1, 0x5000, w0.done + 1);
    EXPECT_EQ(w1.level, ServiceLevel::Remote);
    EXPECT_EQ(ms.l1d(0).findLine(0x5000), nullptr);
    ASSERT_NE(ms.l1d(1).findLine(0x5000), nullptr);
    EXPECT_EQ(ms.l1d(1).findLine(0x5000)->state, CoherState::Modified);
}

TEST(MemSystem, MoesiOwnedStateOnReadSnoop)
{
    MemSystem ms(smallParams(2));
    MemResult w0 = ms.write(0, 0x6000, 0); // core0: Modified
    ms.read(1, 0x6000, w0.done + 1);       // core1 reads
    // MOESI: the previous owner keeps the dirty line as Owned.
    ASSERT_NE(ms.l1d(0).findLine(0x6000), nullptr);
    EXPECT_EQ(ms.l1d(0).findLine(0x6000)->state, CoherState::Owned);
    EXPECT_EQ(ms.l1d(1).findLine(0x6000)->state, CoherState::Shared);
}

TEST(MemSystem, SnoopFilterSuppressesProbes)
{
    MemSystem ms(smallParams(4));
    // Disjoint lines: with a snoop filter no probes should be sent.
    Cycle t = 0;
    for (unsigned c = 0; c < 4; ++c)
        t = ms.read(c, 0x10000 + Addr(c) * 4096, t + 1).done;
    EXPECT_EQ(ms.snoopProbes.value(), 0u);
    EXPECT_GE(ms.snoopFiltered.value(), 4u);
}

TEST(MemSystem, CrossClusterTransferCostsNcore)
{
    MemSystemParams p = smallParams(8); // 2 clusters of 4
    MemSystem ms(p);
    MemResult w = ms.write(0, 0x7000, 0);     // cluster 0
    MemResult r = ms.read(4, 0x7000, w.done + 1); // cluster 1 reads
    EXPECT_EQ(r.level, ServiceLevel::Remote);
    EXPECT_EQ(ms.crossCluster.value(), 1u);
    EXPECT_GE(r.done - (w.done + 1), p.ncoreLatency);
}

TEST(MemSystem, PrefetchFillHidesLatency)
{
    MemSystem ms(smallParams());
    Cycle fill = ms.prefetchFill(0, 0x8000, /*toL1=*/true, 0);
    EXPECT_GE(fill, ms.params().dram.latency);
    // Demand read after the fill is an L1 hit.
    MemResult hit = ms.read(0, 0x8000, fill + 1);
    EXPECT_TRUE(hit.l1Hit);
    // Demand read *during* the fill merges with it instead of paying
    // the full latency again.
    Cycle fill2 = ms.prefetchFill(0, 0x9000, true, fill + 1);
    MemResult merged = ms.read(0, 0x9000, fill + 5);
    EXPECT_LE(merged.done, fill2 + ms.params().l1d.hitLatency +
                               ms.params().busLatency);
}

TEST(MemSystem, PrefetchToL2OnlyLeavesL1Cold)
{
    MemSystem ms(smallParams());
    ms.prefetchFill(0, 0xa000, /*toL1=*/false, 0);
    EXPECT_EQ(ms.l1d(0).findLine(0xa000), nullptr);
    EXPECT_NE(ms.l2(0).findLine(0xa000), nullptr);
    MemResult r = ms.read(0, 0xa000, 500);
    EXPECT_EQ(r.level, ServiceLevel::L2);
}

TEST(MemSystem, MshrLimitSerializesBursts)
{
    MemSystemParams p = smallParams();
    p.l1d.mshrs = 2;
    MemSystem ms(p);
    // Four distinct-line misses at the same cycle: only two can be
    // outstanding, so later ones are delayed.
    MemResult r0 = ms.read(0, 0x10000, 0);
    MemResult r1 = ms.read(0, 0x20000, 0);
    MemResult r2 = ms.read(0, 0x30000, 0);
    MemResult r3 = ms.read(0, 0x40000, 0);
    EXPECT_GT(r2.done, r0.done);
    EXPECT_GT(r3.done, r1.done);
    EXPECT_GT(ms.mshrStalls.value(), 0u);
}

TEST(MemSystem, InvalidateL1DDropsLines)
{
    MemSystem ms(smallParams());
    ms.write(0, 0xb000, 0);
    ms.invalidateL1D(0);
    EXPECT_EQ(ms.l1d(0).findLine(0xb000), nullptr);
}

TEST(MemSystem, FetchPathUsesL1I)
{
    MemSystem ms(smallParams());
    MemResult f = ms.fetch(0, 0xc000, 0);
    EXPECT_EQ(f.level, ServiceLevel::Dram);
    EXPECT_NE(ms.l1i(0).findLine(0xc000), nullptr);
    EXPECT_EQ(ms.l1d(0).findLine(0xc000), nullptr);
    MemResult f2 = ms.fetch(0, 0xc000, f.done + 1);
    EXPECT_TRUE(f2.l1Hit);
}

} // namespace xt910
