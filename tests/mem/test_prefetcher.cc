/**
 * Prefetcher tests (§V.C): stride training, confidence control,
 * multi-stream tracking, depth/distance limits, cross-page TLB
 * prefetch and the untranslatable-drop path.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/prefetcher.h"

namespace xt910
{

namespace
{

/** Records every prefetch; translation can be made to fail per page. */
class RecordingSink : public PrefetchSink
{
  public:
    bool
    prefetchLine(Addr vaddr, bool toL1, Cycle when) override
    {
        (void)when;
        if (untranslatablePages.count(vaddr >> 12))
            return false;
        lines.push_back({vaddr, toL1});
        return true;
    }

    void
    prefetchTranslation(Addr vaddr, Cycle when) override
    {
        (void)when;
        translations.push_back(vaddr >> 12);
    }

    std::vector<std::pair<Addr, bool>> lines;
    std::vector<Addr> translations;
    std::set<Addr> untranslatablePages;
};

PrefetcherParams
basic()
{
    PrefetcherParams p;
    p.distance = 4;
    p.maxDepth = 16;
    return p;
}

} // namespace

TEST(Prefetcher, TrainsOnUnitStrideAndIssuesAhead)
{
    StreamPrefetcher pf(basic(), "pf");
    RecordingSink sink;
    // Stride-64 stream: confidence builds after trainConfidence hits.
    for (int i = 0; i < 7; ++i)
        pf.observe(0x10000 + Addr(i) * 64, true, Cycle(i), sink);
    // Check only the prefetches triggered by the final demand access:
    // they must run ahead of that access.
    sink.lines.clear();
    pf.observe(0x10000 + 7 * 64, true, 7, sink);
    EXPECT_FALSE(sink.lines.empty());
    for (auto &[addr, toL1] : sink.lines) {
        EXPECT_GT(addr, 0x10000u + 7 * 64);
        EXPECT_TRUE(toL1);
    }
    EXPECT_EQ(pf.streamsTrained.value(), 1u);
}

TEST(Prefetcher, NoIssueBeforeConfidence)
{
    StreamPrefetcher pf(basic(), "pf");
    RecordingSink sink;
    pf.observe(0x1000, true, 0, sink);
    pf.observe(0x1040, true, 1, sink); // first stride sample
    EXPECT_TRUE(sink.lines.empty());   // confidence 1 < 2
}

TEST(Prefetcher, RandomStreamStaysQuiet)
{
    StreamPrefetcher pf(basic(), "pf");
    RecordingSink sink;
    // Alternate strides so the pattern never stabilizes.
    Addr a = 0x1000;
    const int64_t strides[] = {64, 192, 64, 320, 128, 64, 256};
    for (int64_t s : strides) {
        pf.observe(a, true, 0, sink);
        a += Addr(s);
    }
    EXPECT_TRUE(sink.lines.empty());
}

TEST(Prefetcher, NonUnitAndNegativeStrides)
{
    // "This mode supports any stride lengths" (global mode).
    PrefetcherParams p = basic();
    p.mode = PrefetcherParams::Mode::Global;
    p.maxDepth = 64;
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    for (int i = 0; i < 8; ++i)
        pf.observe(0x20000 + Addr(i) * 256, true, Cycle(i), sink);
    EXPECT_FALSE(sink.lines.empty());

    RecordingSink sink2;
    StreamPrefetcher pf2(p, "pf2");
    for (int i = 0; i < 7; ++i)
        pf2.observe(0x40000 - Addr(i) * 64, true, Cycle(i), sink2);
    sink2.lines.clear();
    pf2.observe(0x40000 - 7 * 64, true, 7, sink2);
    ASSERT_FALSE(sink2.lines.empty());
    for (auto &[addr, toL1] : sink2.lines)
        EXPECT_LT(addr, 0x40000u - 7 * 64);
}

TEST(Prefetcher, TracksEightConcurrentStreams)
{
    PrefetcherParams p = basic();
    p.numStreams = 8;
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    // 8 interleaved streams in distinct regions.
    for (int round = 0; round < 6; ++round)
        for (int s = 0; s < 8; ++s)
            pf.observe(Addr(s) * 0x100000 + Addr(round) * 64, true,
                       Cycle(round), sink);
    EXPECT_EQ(pf.streamsTrained.value(), 8u);
    // Prefetches were issued for every region.
    std::set<Addr> regions;
    for (auto &[addr, toL1] : sink.lines)
        regions.insert(addr / 0x100000);
    EXPECT_EQ(regions.size(), 8u);
}

TEST(Prefetcher, DepthLimitBoundsLead)
{
    PrefetcherParams p = basic();
    p.distance = 100;  // ask for far more than depth allows
    p.maxDepth = 8;    // but cap the lead at 8 lines
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    for (int i = 0; i < 19; ++i)
        pf.observe(0x100000 + Addr(i) * 64, true, Cycle(i), sink);
    // Lead is bounded relative to the demand access that issued the
    // prefetch, so inspect the final access's prefetches only.
    sink.lines.clear();
    Addr lastDemand = 0x100000 + 19 * 64;
    pf.observe(lastDemand, true, 19, sink);
    for (auto &[addr, toL1] : sink.lines) {
        EXPECT_GT(addr, lastDemand);
        EXPECT_LE(addr - lastDemand, Addr(p.maxDepth) * 64 + 64);
    }
}

TEST(Prefetcher, CrossPageIssuesTlbPrefetch)
{
    PrefetcherParams p = basic();
    p.distance = 16;
    p.maxDepth = 32;
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    // Stream marching toward a page boundary.
    for (int i = 0; i < 70; ++i)
        pf.observe(0x30000 + Addr(i) * 64, true, Cycle(i), sink);
    EXPECT_FALSE(sink.translations.empty());
    // The requested translations are for pages ahead of the demand.
    for (Addr vpn : sink.translations)
        EXPECT_GT(vpn, 0x30000u >> 12);
    EXPECT_GT(pf.tlbPrefetches.value(), 0u);
}

TEST(Prefetcher, UntranslatablePageStallsStream)
{
    PrefetcherParams p = basic();
    p.distance = 16;
    p.maxDepth = 32;
    p.enableTlb = false; // scenario e): TLB prefetch off
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    sink.untranslatablePages.insert(0x31); // page after 0x30xxx
    for (int i = 0; i < 70; ++i)
        pf.observe(0x30000 + Addr(i) * 64, true, Cycle(i), sink);
    // No prefetch may land in the untranslatable page.
    for (auto &[addr, toL1] : sink.lines)
        EXPECT_NE(addr >> 12, 0x31u);
    EXPECT_GT(pf.droppedUntranslatable.value(), 0u);
    EXPECT_TRUE(sink.translations.empty());
}

TEST(Prefetcher, L2OnlyModeMarksFillsForL2)
{
    PrefetcherParams p = basic();
    p.enableL1 = false; // backfill L2 only
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    for (int i = 0; i < 8; ++i)
        pf.observe(0x50000 + Addr(i) * 64, true, Cycle(i), sink);
    ASSERT_FALSE(sink.lines.empty());
    for (auto &[addr, toL1] : sink.lines)
        EXPECT_FALSE(toL1);
}

TEST(Prefetcher, DisabledPrefetcherDoesNothing)
{
    PrefetcherParams p = basic();
    p.enableL1 = false;
    p.enableL2 = false;
    StreamPrefetcher pf(p, "pf");
    RecordingSink sink;
    for (int i = 0; i < 20; ++i)
        pf.observe(0x60000 + Addr(i) * 64, true, Cycle(i), sink);
    EXPECT_TRUE(sink.lines.empty());
    EXPECT_TRUE(sink.translations.empty());
}

} // namespace xt910
