/**
 * Spot-checks of the decoder against independently known RV64GC
 * encodings (words taken from the ISA manual / GNU as output).
 */

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/encoding.h"

namespace xt910
{

TEST(Decode, AddiSpSpMinus16)
{
    // addi sp, sp, -16 == 0xff010113
    DecodedInst di = decode32(0xff010113);
    EXPECT_EQ(di.op, Opcode::ADDI);
    EXPECT_EQ(di.rd, 2);
    EXPECT_EQ(di.rs1, 2);
    EXPECT_EQ(di.imm, -16);
    EXPECT_EQ(di.rdClass, RegClass::Int);
}

TEST(Decode, AddR)
{
    // add a0, a1, a2 == 0x00c58533
    DecodedInst di = decode32(0x00c58533);
    EXPECT_EQ(di.op, Opcode::ADD);
    EXPECT_EQ(di.rd, 10);
    EXPECT_EQ(di.rs1, 11);
    EXPECT_EQ(di.rs2, 12);
}

TEST(Decode, LoadStore)
{
    // lw a5, 8(sp) == 0x00812783
    DecodedInst lw = decode32(0x00812783);
    EXPECT_EQ(lw.op, Opcode::LW);
    EXPECT_EQ(lw.rd, 15);
    EXPECT_EQ(lw.rs1, 2);
    EXPECT_EQ(lw.imm, 8);
    EXPECT_TRUE(lw.isLoad());
    EXPECT_FALSE(lw.isStore());

    // sd a0, 0(a1) == 0x00a5b023
    DecodedInst sd = decode32(0x00a5b023);
    EXPECT_EQ(sd.op, Opcode::SD);
    EXPECT_EQ(sd.rs1, 11);
    EXPECT_EQ(sd.rs2, 10);
    EXPECT_EQ(sd.imm, 0);
    EXPECT_TRUE(sd.isStore());
}

TEST(Decode, BranchAndJump)
{
    // beq a0, a1, +8 == 0x00b50463
    DecodedInst beq = decode32(0x00b50463);
    EXPECT_EQ(beq.op, Opcode::BEQ);
    EXPECT_EQ(beq.rs1, 10);
    EXPECT_EQ(beq.rs2, 11);
    EXPECT_EQ(beq.imm, 8);
    EXPECT_TRUE(beq.isBranch());

    // jal ra, 16 == 0x010000ef
    DecodedInst jal = decode32(0x010000ef);
    EXPECT_EQ(jal.op, Opcode::JAL);
    EXPECT_EQ(jal.rd, 1);
    EXPECT_EQ(jal.imm, 16);
    EXPECT_TRUE(jal.isCall());

    // ret == jalr x0, 0(ra) == 0x00008067
    DecodedInst ret = decode32(0x00008067);
    EXPECT_EQ(ret.op, Opcode::JALR);
    EXPECT_TRUE(ret.isReturn());
    EXPECT_FALSE(ret.isCall());
}

TEST(Decode, UpperImmediates)
{
    // lui a0, 0x12345 == 0x12345537
    DecodedInst lui = decode32(0x12345537);
    EXPECT_EQ(lui.op, Opcode::LUI);
    EXPECT_EQ(lui.rd, 10);
    EXPECT_EQ(lui.imm, 0x12345000);

    // auipc t0, 0x1 == 0x00001297
    DecodedInst auipc = decode32(0x00001297);
    EXPECT_EQ(auipc.op, Opcode::AUIPC);
    EXPECT_EQ(auipc.rd, 5);
    EXPECT_EQ(auipc.imm, 0x1000);
}

TEST(Decode, MulDiv)
{
    // mul a0, a1, a2 == 0x02c58533
    DecodedInst mul = decode32(0x02c58533);
    EXPECT_EQ(mul.op, Opcode::MUL);
    EXPECT_EQ(opClass(mul.op), OpClass::IntMul);

    // divw a3, a4, a5 == f7=1,f3=4,opc=0x3b
    DecodedInst divw = decode32(0x02f746bb);
    EXPECT_EQ(divw.op, Opcode::DIVW);
    EXPECT_EQ(opClass(divw.op), OpClass::IntDiv);
}

TEST(Decode, SystemAndCsr)
{
    EXPECT_EQ(decode32(0x00000073).op, Opcode::ECALL);
    EXPECT_EQ(decode32(0x00100073).op, Opcode::EBREAK);
    EXPECT_EQ(decode32(0x30200073).op, Opcode::MRET);
    // csrrw x0, 0x300, a0 == 0x30051073
    DecodedInst csr = decode32(0x30051073);
    EXPECT_EQ(csr.op, Opcode::CSRRW);
    EXPECT_EQ(csr.imm, 0x300);
    EXPECT_EQ(csr.rs1, 10);
}

TEST(Decode, Shifts)
{
    // slli a0, a0, 3 == 0x00351513
    DecodedInst slli = decode32(0x00351513);
    EXPECT_EQ(slli.op, Opcode::SLLI);
    EXPECT_EQ(slli.imm, 3);
    // srai a0, a0, 63 == funct6=0x10, shamt=63
    DecodedInst srai = decode32(0x43f55513);
    EXPECT_EQ(srai.op, Opcode::SRAI);
    EXPECT_EQ(srai.imm, 63);
}

TEST(Decode, Amo)
{
    // amoadd.w a0, a1, (a2) == 0x00b6252f
    DecodedInst amo = decode32(0x00b6252f);
    EXPECT_EQ(amo.op, Opcode::AMOADD_W);
    EXPECT_EQ(amo.rd, 10);
    EXPECT_EQ(amo.rs1, 12);
    EXPECT_EQ(amo.rs2, 11);
    EXPECT_TRUE(isMemRead(amo.op));
    EXPECT_TRUE(isMemWrite(amo.op));

    // lr.d t0, (a0) == f5=0x02,f3=3: 0x100532af
    DecodedInst lr = decode32(0x100532af);
    EXPECT_EQ(lr.op, Opcode::LR_D);
    EXPECT_FALSE(isMemWrite(lr.op));
}

TEST(Decode, FpBasics)
{
    // fadd.d fa0, fa1, fa2 (rm=dyn) == 0x02c5f553
    DecodedInst fadd = decode32(0x02c5f553);
    EXPECT_EQ(fadd.op, Opcode::FADD_D);
    EXPECT_EQ(fadd.rdClass, RegClass::Fp);
    EXPECT_EQ(fadd.rd, 10);
    EXPECT_EQ(fadd.rs1, 11);
    EXPECT_EQ(fadd.rs2, 12);

    // fld fa0, 8(sp) == 0x00813507
    DecodedInst fld = decode32(0x00813507);
    EXPECT_EQ(fld.op, Opcode::FLD);
    EXPECT_EQ(fld.rdClass, RegClass::Fp);
    EXPECT_EQ(fld.rs1Class, RegClass::Int);

    // fmv.x.d a0, fa0 == 0xe2050553
    DecodedInst fmv = decode32(0xe2050553);
    EXPECT_EQ(fmv.op, Opcode::FMV_X_D);
    EXPECT_EQ(fmv.rdClass, RegClass::Int);
    EXPECT_EQ(fmv.rs1Class, RegClass::Fp);
}

TEST(Decode, InvalidWord)
{
    DecodedInst di = decode32(0xffffffff);
    EXPECT_FALSE(di.valid());
    EXPECT_EQ(di.op, Opcode::Invalid);
}

TEST(Decode, EveryTableEntryDecodesToItself)
{
    // The canonical match word of every entry must decode back to the
    // entry's own opcode (catches overlapping/ambiguous masks).
    for (const EncEntry &e : encodingTable()) {
        DecodedInst di = decode32(e.match);
        EXPECT_EQ(di.op, e.op)
            << "match word of " << mnemonic(e.op) << " decoded as "
            << mnemonic(di.op);
    }
}

TEST(Disasm, RendersCoreOps)
{
    EXPECT_EQ(disassemble(decode32(0x00c58533)), "add a0, a1, a2");
    EXPECT_EQ(disassemble(decode32(0x00812783)), "lw a5, 8(sp)");
    DecodedInst bad;
    EXPECT_EQ(disassemble(bad), "<invalid>");
    // Every opcode's match word must disassemble without crashing and
    // start with its mnemonic.
    for (const EncEntry &e : encodingTable()) {
        std::string s = disassemble(decode32(e.match));
        EXPECT_EQ(s.rfind(mnemonic(e.op), 0), 0u) << s;
    }
}

} // namespace xt910
