/**
 * RVC expansion spot checks against known halfwords, plus the
 * compress->expand round-trip property.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "isa/encoding.h"

namespace xt910
{

namespace
{

DecodedInst
expandAndDecode(uint16_t h)
{
    uint32_t w = expandRvc(h);
    EXPECT_NE(w, 0u) << "halfword 0x" << std::hex << h;
    return decode32(w);
}

} // namespace

TEST(Rvc, CAddi)
{
    // c.addi sp, sp, -16 == 0x1141
    DecodedInst di = expandAndDecode(0x1141);
    EXPECT_EQ(di.op, Opcode::ADDI);
    EXPECT_EQ(di.rd, 2);
    EXPECT_EQ(di.rs1, 2);
    EXPECT_EQ(di.imm, -16);
}

TEST(Rvc, CLi)
{
    // c.li a0, 1 == 0x4505
    DecodedInst di = expandAndDecode(0x4505);
    EXPECT_EQ(di.op, Opcode::ADDI);
    EXPECT_EQ(di.rd, 10);
    EXPECT_EQ(di.rs1, 0);
    EXPECT_EQ(di.imm, 1);
}

TEST(Rvc, CMvAndCAdd)
{
    // c.mv a0, a1 == 0x852e
    DecodedInst mv = expandAndDecode(0x852e);
    EXPECT_EQ(mv.op, Opcode::ADD);
    EXPECT_EQ(mv.rd, 10);
    EXPECT_EQ(mv.rs1, 0);
    EXPECT_EQ(mv.rs2, 11);

    // c.add a0, a1 == 0x952e
    DecodedInst add = expandAndDecode(0x952e);
    EXPECT_EQ(add.op, Opcode::ADD);
    EXPECT_EQ(add.rd, 10);
    EXPECT_EQ(add.rs1, 10);
    EXPECT_EQ(add.rs2, 11);
}

TEST(Rvc, CJrAndCRet)
{
    // c.jr a5 == 0x8782
    DecodedInst jr = expandAndDecode(0x8782);
    EXPECT_EQ(jr.op, Opcode::JALR);
    EXPECT_EQ(jr.rd, 0);
    EXPECT_EQ(jr.rs1, 15);
    // ret == c.jr ra == 0x8082
    DecodedInst ret = expandAndDecode(0x8082);
    EXPECT_TRUE(ret.isReturn());
}

TEST(Rvc, CEbreak)
{
    EXPECT_EQ(expandAndDecode(0x9002).op, Opcode::EBREAK);
}

TEST(Rvc, DecodeEntryPicksWidth)
{
    // decode() on a word whose low bits are 11 uses the 32-bit path.
    DecodedInst full = decode(0x00c58533);
    EXPECT_EQ(full.len, 4);
    // decode() on a compressed halfword reports len == 2.
    DecodedInst half = decode(0x4505);
    EXPECT_EQ(half.len, 2);
    EXPECT_EQ(half.op, Opcode::ADDI);
}

TEST(Rvc, IllegalHalfword)
{
    EXPECT_EQ(expandRvc(0x0000), 0u); // all-zero is defined illegal
    DecodedInst di = decode(0x0000);
    EXPECT_FALSE(di.valid());
    EXPECT_EQ(di.len, 2);
}

TEST(Rvc, ExpandCompressRoundTripFuzz)
{
    // For every halfword that expands legally, compressing the decoded
    // form must reproduce an equivalent instruction.
    int covered = 0;
    for (uint32_t h = 0; h <= 0xffff; ++h) {
        if ((h & 3) == 3)
            continue; // not compressed
        uint32_t w = expandRvc(uint16_t(h));
        if (w == 0)
            continue;
        DecodedInst di = decode32(w);
        if (!di.valid())
            continue;
        auto c = compressInst(di);
        if (!c)
            continue; // canonicalization may lose compressibility
        uint32_t w2 = expandRvc(*c);
        ASSERT_NE(w2, 0u) << std::hex << h;
        DecodedInst di2 = decode32(w2);
        ASSERT_TRUE(di2.valid()) << std::hex << h;
        EXPECT_EQ(di2.op, di.op) << std::hex << h;
        EXPECT_EQ(di2.rd, di.rd) << std::hex << h;
        EXPECT_EQ(di2.rs1, di.rs1) << std::hex << h;
        EXPECT_EQ(di2.rs2, di.rs2) << std::hex << h;
        EXPECT_EQ(di2.imm, di.imm) << std::hex << h;
        ++covered;
    }
    // The sweep must exercise a large portion of the RVC space.
    EXPECT_GT(covered, 10000);
}

TEST(Rvc, CompressExpandsBackFromDecoded32)
{
    // Compressible 32-bit instructions survive the round trip.
    struct Case { uint32_t word; };
    const uint32_t words[] = {
        0xff010113, // addi sp, sp, -16
        0x00812783, // lw a5, 8(sp)
        0x00c58533, // add a0, a1, a2 (rd != rs1: c.mv not applicable)
        0x00008067, // ret
    };
    for (uint32_t w : words) {
        DecodedInst di = decode32(w);
        auto c = compressInst(di);
        if (!c)
            continue;
        DecodedInst di2 = decode32(expandRvc(*c));
        EXPECT_EQ(di2.op, di.op);
        EXPECT_EQ(di2.imm, di.imm);
        EXPECT_EQ(di2.rd, di.rd);
        EXPECT_EQ(di2.rs1, di.rs1);
    }
}

} // namespace xt910
