/**
 * Encoder/decoder consistency properties over the whole encoding table:
 * for every entry, randomizing the free (operand) bits and decoding
 * must return that entry's opcode, and re-encoding the decoded form
 * must be idempotent field-wise.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "isa/encoding.h"

namespace xt910
{

namespace
{

bool
sameFields(const DecodedInst &a, const DecodedInst &b)
{
    return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 &&
           a.rs2 == b.rs2 && a.rs3 == b.rs3 && a.imm == b.imm &&
           a.shamt2 == b.shamt2 && a.vm == b.vm &&
           a.rdClass == b.rdClass && a.rs1Class == b.rs1Class &&
           a.rs2Class == b.rs2Class && a.rs3Class == b.rs3Class;
}

} // namespace

class EncodingRoundTrip : public ::testing::TestWithParam<EncEntry>
{
};

TEST_P(EncodingRoundTrip, RandomOperandBits)
{
    const EncEntry &e = GetParam();
    Xorshift64 rng(0xc0ffee ^ uint32_t(e.match));
    for (int trial = 0; trial < 200; ++trial) {
        uint32_t w = e.match | (uint32_t(rng.next()) & ~e.mask);
        DecodedInst di = decode32(w);
        ASSERT_TRUE(di.valid())
            << mnemonic(e.op) << " word 0x" << std::hex << w;
        ASSERT_EQ(di.op, e.op)
            << "word of " << mnemonic(e.op) << " decoded as "
            << mnemonic(di.op);
        // encode(decode(w)) must be decodable to identical fields.
        uint32_t w2 = encode(di);
        DecodedInst di2 = decode32(w2);
        ASSERT_TRUE(sameFields(di, di2))
            << mnemonic(e.op) << ": 0x" << std::hex << w << " vs 0x"
            << w2;
        // And encoding is a fixpoint from then on.
        EXPECT_EQ(encode(di2), w2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingRoundTrip,
    ::testing::ValuesIn(encodingTable()),
    [](const ::testing::TestParamInfo<EncEntry> &info) {
        std::string n = mnemonic(info.param.op);
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n + "_" + std::to_string(info.index);
    });

TEST(EncodingTable, NoDuplicateOpcodes)
{
    std::vector<int> seen(numOpcodes, 0);
    for (const EncEntry &e : encodingTable())
        ++seen[static_cast<unsigned>(e.op)];
    for (unsigned i = 0; i < numOpcodes; ++i)
        EXPECT_LE(seen[i], 1) << mnemonic(Opcode(i));
}

TEST(EncodingTable, MatchInsideMask)
{
    for (const EncEntry &e : encodingTable())
        EXPECT_EQ(e.match & ~e.mask, 0u) << mnemonic(e.op);
}

TEST(EncodingTable, EveryOpcodeEncodable)
{
    // Every opcode in the master list must have exactly one encoding.
    std::vector<bool> has(numOpcodes, false);
    for (const EncEntry &e : encodingTable())
        has[static_cast<unsigned>(e.op)] = true;
    for (unsigned i = 0; i < numOpcodes; ++i)
        EXPECT_TRUE(has[i]) << "no encoding for " << mnemonic(Opcode(i));
}

} // namespace xt910
