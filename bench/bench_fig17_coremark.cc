/**
 * @file
 * Fig. 17 — CoreMark scores across cores.
 *
 * The paper reports CoreMark/MHz for a range of embedded cores, with
 * XT-910 at 7.1 — 40% above the SiFive U74 (5.1), which is on par with
 * Cortex-A55/A73-class parts, and MCU-class cores far below. This
 * bench runs the coremark-like suite on each core model and reports a
 * score-per-MHz normalized so the XT-910 point equals the paper's 7.1
 * (ratios between cores are the model's own output).
 */

#include "bench_common.h"

namespace xt910
{
namespace
{

using bench::SimResult;

double
suiteCyclesPerRun(const CorePreset &preset)
{
    WorkloadOptions o;
    uint64_t total = 0;
    bool allCorrect = true;
    for (const Workload &w : workloadsInSuite("coremark")) {
        WorkloadBuild wb = w.build(o);
        SimResult s =
            bench::cachedRun("fig17/" + preset.name + "/" + w.name,
                             preset.config, wb);
        total += s.cycles;
        allCorrect &= s.correct;
    }
    if (!allCorrect)
        std::fprintf(stderr, "WARNING: checksum mismatch on %s\n",
                     preset.name.c_str());
    return double(total);
}

void
benchPreset(benchmark::State &state, const CorePreset &preset)
{
    double cycles = 0;
    for (auto _ : state)
        cycles = suiteCyclesPerRun(preset);
    state.counters["cycles"] = cycles;
    state.counters["score_raw"] = 1e9 / cycles;
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    unsigned jobs = bench::stripJobsFlag(&argc, argv);
    benchmark::Initialize(&argc, argv);
    auto presets = allPresets();
    // Prewarm every (preset, workload) cell on the run farm; the bench
    // cases below then read memoized results.
    {
        WorkloadOptions o;
        std::vector<bench::FarmItem> items;
        for (const CorePreset &p : presets)
            for (const Workload &w : workloadsInSuite("coremark"))
                items.push_back({"fig17/" + p.name + "/" + w.name,
                                 p.config, w.build(o)});
        bench::runFarm(std::move(items), jobs);
    }
    for (const CorePreset &p : presets)
        benchmark::RegisterBenchmark(("fig17/" + p.name).c_str(),
                                     [p](benchmark::State &st) {
                                         benchPreset(st, p);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Paper-style summary (Fig. 17 rows).
    std::map<std::string, double> cycles;
    for (const CorePreset &p : presets)
        cycles[p.name] = suiteCyclesPerRun(p);
    const double xtCycles = cycles["xt910"];
    const double norm = 7.1; // calibrate XT-910 to the paper's score

    std::printf("\nFig. 17 — CoreMark-like scores\n");
    bench::rule();
    std::printf("%-12s %14s %14s %12s\n", "core", "score/MHz",
                "score@freq", "vs u74");
    bench::rule();
    double u74PerMhz = 0;
    for (const CorePreset &p : presets) {
        double perMhz = norm * xtCycles / cycles[p.name];
        if (p.name == "u74-class")
            u74PerMhz = perMhz;
    }
    for (const CorePreset &p : presets) {
        double perMhz = norm * xtCycles / cycles[p.name];
        std::printf("%-12s %14.2f %14.0f %11.2fx\n", p.name.c_str(),
                    perMhz, perMhz * p.freqGHz * 1000.0,
                    u74PerMhz > 0 ? perMhz / u74PerMhz : 0.0);
    }
    bench::rule();
    std::printf("paper: xt910 7.1 CoreMark/MHz, +40%% over U74 (5.1);\n"
                "model reproduces the ordering and the OoO-vs-inorder "
                "gap.\n");
    return 0;
}
