/**
 * @file
 * §VII/§X — vector 16-bit MAC throughput. The paper: XT-910's two
 * 128-bit slices deliver 16x 16-bit MACs per cycle, twice the
 * Cortex-A73's 8x NEON MACs, for a theoretical 1x improvement in AI
 * kernels (plus half-precision support NEON lacks). This bench runs
 * the dot-product kernel scalar vs vector on XT-910, and vector on
 * the NEON-like A73 configuration.
 */

#include "bench_common.h"

namespace xt910
{
namespace
{

bench::SimResult
runKernel(const char *key, const SystemConfig &cfg, const char *name)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload(name).build(o);
    return bench::cachedRun(key, cfg, wb);
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);

    SystemConfig xt = xt910Preset().config;
    SystemConfig neon = a73Preset().config; // 128-bit SIMD datapath

    struct Row
    {
        const char *label;
        const char *kernel;
        SystemConfig cfg;
    };
    const Row rows[] = {
        {"xt910-scalar", "mac_scalar", xt},
        {"xt910-vector", "mac_vector", xt},
        {"a73-neon-like", "mac_vector", neon},
    };
    for (const Row &r : rows) {
        benchmark::RegisterBenchmark(
            (std::string("vecmac/") + r.label).c_str(),
            [r](benchmark::State &st) {
                bench::SimResult s{};
                for (auto _ : st)
                    s = runKernel(r.label, r.cfg, r.kernel);
                st.counters["cycles"] = double(s.cycles);
                st.counters["correct"] = s.correct;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    auto sScalar = runKernel("xt910-scalar", xt, "mac_scalar");
    auto sVec = runKernel("xt910-vector", xt, "mac_vector");
    auto sNeon = runKernel("a73-neon-like", neon, "mac_vector");

    std::printf("\n§VII/§X — 16-bit MAC dot product (2048 elements x 10"
                " passes)\n");
    bench::rule();
    std::printf("%-16s %12s %14s %16s\n", "config", "cycles",
                "vs scalar", "MACs/cycle peak");
    bench::rule();
    std::printf("%-16s %12llu %14s %16s\n", "xt910 scalar",
                static_cast<unsigned long long>(sScalar.cycles), "1.00x",
                "1");
    std::printf("%-16s %12llu %13.2fx %16s\n", "xt910 vector",
                static_cast<unsigned long long>(sVec.cycles),
                double(sScalar.cycles) / double(sVec.cycles), "16");
    std::printf("%-16s %12llu %13.2fx %16s\n", "a73 NEON-like",
                static_cast<unsigned long long>(sNeon.cycles),
                double(sScalar.cycles) / double(sNeon.cycles), "8");
    bench::rule();
    std::printf("shape: xt910 vector ~2x the NEON-like datapath "
                "(measured %.2fx); paper: 16x vs 8x MACs/cycle.\n",
                double(sNeon.cycles) / double(sVec.cycles));
    return 0;
}
