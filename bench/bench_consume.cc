/**
 * @file
 * Host-side cost of the timing model's consume path, isolated from the
 * ISS: per-OpClass nanoseconds per instruction for the per-record
 * reference path (XtCore::consume) and the block-batched path
 * (XtCore::consumeBlock, DESIGN.md §3h), plus the simple-slot hit
 * rate each record stream achieves.
 *
 * Method: assemble a small kernel dominated by one op class, run the
 * ISS once to capture its retired-record stream, then replay the same
 * records into fresh timing cores — per-record and in spans — timing
 * only the consume calls. Replay keeps the measurement free of ISS
 * cost and makes the two paths consume byte-identical inputs.
 *
 * Like bench_simspeed this is a bench about the simulator, not the
 * modelled core; it writes a BENCH_consume.json sidecar next to
 * BENCH_simspeed.json so consume-cost regressions are visible
 * per class, not just in end-to-end MIPS.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "baseline/presets.h"
#include "common/log.h"
#include "common/version.h"
#include "core/core.h"
#include "func/csr.h"
#include "func/iss.h"
#include "mem/memsystem.h"
#include "xasm/assembler.h"

namespace xt910
{
namespace
{

using namespace reg;

struct Scenario
{
    const char *name;
    std::function<void(Assembler &)> body;
};

/** Kernel: @p body repeated inside a counted loop (the loop branch
 *  adds one Branch + one IntAlu per iteration to every stream). */
Program
kernel(const Scenario &sc, int iters)
{
    Assembler a;
    // Scratch pointer for the memory scenarios (off-image region the
    // workloads also use; sparse memory reads back zero).
    a.li(s1, 0x9000'0000);
    a.li(s0, iters);
    a.label("loop");
    sc.body(a);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    return a.assemble();
}

/** The ISS-retired record stream of @p prog (block cache on, so the
 *  records carry µop-plan slots exactly as System hands them over). */
std::vector<ExecRecord>
captureRecords(const Program &prog, size_t cap)
{
    Memory mem;
    IssOptions io;
    io.blockCache = true;
    Iss iss(mem, 1, io);
    iss.loadProgram(prog);
    std::vector<ExecRecord> recs;
    recs.reserve(cap);
    while (!iss.halted(0) && recs.size() < cap)
        recs.push_back(iss.step(0));
    return recs;
}

struct Cost
{
    double recordNs = 0.0; ///< per-record consume() path
    double blockNs = 0.0;  ///< consumeBlock() span path
    double hitRate = 0.0;  ///< simple-slot fraction in the block path
};

/** Replay @p recs into fresh cores, best of @p reps per path. */
Cost
measure(const std::vector<ExecRecord> &recs, const CoreParams &cp,
        int reps)
{
    constexpr unsigned kSpan = 64;
    MemSystemParams mp;
    mp.numCores = 1;
    Memory ptMem;
    Cost cost;
    double bestRec = 1e30, bestBlk = 1e30;
    for (int i = 0; i < reps; ++i) {
        {
            MemSystem ms(mp);
            XtCore core(0, cp, ms, ptMem);
            auto t0 = std::chrono::steady_clock::now();
            for (const ExecRecord &r : recs)
                core.consume(r);
            double sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
            bestRec = std::min(bestRec, sec / double(recs.size()));
        }
        {
            MemSystem ms(mp);
            XtCore core(0, cp, ms, ptMem);
            auto t0 = std::chrono::steady_clock::now();
            for (size_t at = 0; at < recs.size(); at += kSpan) {
                unsigned n = unsigned(
                    std::min<size_t>(kSpan, recs.size() - at));
                core.consumeBlock(recs.data() + at, n);
            }
            double sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
            bestBlk = std::min(bestBlk, sec / double(recs.size()));
            cost.hitRate = double(core.simpleSlotInsts()) /
                           double(core.retired());
        }
    }
    cost.recordNs = bestRec * 1e9;
    cost.blockNs = bestBlk * 1e9;
    return cost;
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;

    std::string out = "BENCH_consume.json";
    int reps = 3;
    int iters = 20000;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            out = a.substr(6);
        else if (a.rfind("--reps=", 0) == 0)
            reps = std::atoi(a.c_str() + 7);
        else if (a.rfind("--iters=", 0) == 0)
            iters = std::atoi(a.c_str() + 8);
        else {
            std::fprintf(stderr,
                         "usage: %s [--out=FILE] [--reps=N] "
                         "[--iters=N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    // One kernel per op class the consume path treats differently:
    // the simple-slot classes (alu/mul/div/branch), the memory classes
    // (slow path: LSU, store queue, prefetcher), and a serializer.
    const std::vector<Scenario> scenarios = {
        {"IntAlu",
         [](Assembler &a) {
             for (int k = 0; k < 8; ++k)
                 a.addi(a0, a0, 1);
         }},
        {"IntMul",
         [](Assembler &a) {
             for (int k = 0; k < 8; ++k)
                 a.mul(a0, a0, a1);
         }},
        {"IntDiv",
         [](Assembler &a) {
             for (int k = 0; k < 4; ++k)
                 a.div(a0, a0, a1);
         }},
        {"Branch",
         [](Assembler &a) {
             for (int k = 0; k < 4; ++k) {
                 a.beq(zero, zero, "b" + std::to_string(k));
                 a.label("b" + std::to_string(k));
             }
         }},
        {"Load",
         [](Assembler &a) {
             for (int k = 0; k < 8; ++k)
                 a.ld(a0, s1, 8 * k);
         }},
        {"Store",
         [](Assembler &a) {
             for (int k = 0; k < 8; ++k)
                 a.sd(a1, s1, 8 * k);
         }},
        {"Csr",
         [](Assembler &a) {
             for (int k = 0; k < 2; ++k)
                 a.csrr(a2, csr::minstret);
         }},
    };

    const CoreParams cp = xt910Preset().config.core;
    constexpr size_t cap = 200'000;

    struct Row
    {
        std::string name;
        size_t insts;
        Cost cost;
    };
    std::vector<Row> rows;

    std::printf("consume cost per op-class stream (best of %d)\n",
                reps);
    std::printf("%-8s %9s | %12s %12s %8s %9s\n", "class", "insts",
                "record ns/i", "block ns/i", "speedup", "hit rate");
    for (const Scenario &sc : scenarios) {
        std::vector<ExecRecord> recs =
            captureRecords(kernel(sc, iters), cap);
        xt_assert(!recs.empty(), "no records for ", sc.name);
        Row row{sc.name, recs.size(), measure(recs, cp, reps)};
        std::printf("%-8s %9zu | %12.1f %12.1f %7.2fx %8.1f%%\n",
                    row.name.c_str(), row.insts, row.cost.recordNs,
                    row.cost.blockNs,
                    row.cost.blockNs > 0
                        ? row.cost.recordNs / row.cost.blockNs
                        : 0.0,
                    100.0 * row.cost.hitRate);
        rows.push_back(std::move(row));
    }

    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    os << "{\n  \"buildInfo\": \"" << buildInfo("bench_consume")
       << "\",\n  \"reps\": " << reps << ",\n  \"classes\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "    { \"name\": \"%s\", \"insts\": %zu,\n"
            "      \"consume_ns_per_inst\": %.1f, "
            "\"block_consume_ns_per_inst\": %.1f, "
            "\"simple_hit_rate\": %.3f }%s\n",
            r.name.c_str(), r.insts, r.cost.recordNs, r.cost.blockNs,
            r.cost.hitRate, i + 1 < rows.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
