/**
 * @file
 * Ablation studies of the design choices the paper calls out: the loop
 * buffer (§III.C), the L0 BTB (§III.B), the two-level branch-
 * prediction buffer (§III.A), the dual-issue LSU (§V.A), the pseudo
 * double store (§V.B), the memory-dependence predictor (§V.A) and the
 * snoop filter (§VI). Each ablation runs the code most sensitive to
 * the mechanism — registry kernels where suitable, targeted
 * microkernels where the mechanism needs a specific pattern.
 */

#include "bench_common.h"

namespace xt910
{
namespace
{

using namespace reg;

uint64_t
kernelCycles(const std::string &key, const SystemConfig &cfg,
             const char *kernel)
{
    WorkloadOptions o;
    o.streamBytes = 256 * 1024;
    WorkloadBuild wb = findWorkload(kernel).build(o);
    return bench::cachedRun(key, cfg, wb).cycles;
}

/** Tiny-body loop: the LBUF's target pattern (§III.C). */
Program
tinyLoopProgram()
{
    Assembler a;
    a.li(s0, 60000);
    a.label("loop");
    a.addi(a0, a0, 1);
    a.addi(a1, a1, 3);
    a.xor_(a2, a0, a1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    return a.assemble();
}

/** Slow store address + independent same-address load: the §V.A
 *  speculation-failure pattern the dependence predictor tames. */
Program
violationProgram()
{
    Assembler a;
    a.la(s1, "buf");
    a.li(s0, 20000);
    a.label("loop");
    a.mul(t0, s0, s0);
    a.andi(t1, t0, 0);
    a.add(t2, s1, t1);  // store address depends on the slow mul
    a.sd(t0, t2, 0);
    a.ld(a1, s1, 0);    // same address, independent -> speculates
    a.add(a2, a2, a1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "loop");
    a.ebreak();
    a.align(8);
    a.label("buf");
    a.zero(8);
    return a.assemble();
}

/** 4 cores scanning private L1-spilling regions: every L2 access is
 *  to an unshared line, exactly the traffic the snoop filter saves
 *  from probing the other L1s (§VI). */
Program
smpPrivateScanProgram()
{
    Assembler a;
    // Private 128 KiB per hart (spills a 32 KiB L1D, fits the L2).
    a.csrr(t0, 0xf14);
    a.slli(t0, t0, 20);
    a.li(s1, int64_t(0xa100'0000));
    a.add(s1, s1, t0);
    a.li(s0, 8); // passes
    a.label("outer");
    a.li(t1, 0);
    a.li(t2, 2048); // lines
    a.label("loop");
    a.slli(t3, t1, 6);
    a.add(t3, t3, s1);
    a.ld(t4, t3, 0);
    a.add(a0, a0, t4);
    a.addi(t1, t1, 1);
    a.blt(t1, t2, "loop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    a.ebreak();
    return a.assemble();
}

uint64_t
runProgram(const Program &p, const SystemConfig &cfg)
{
    System sys(cfg);
    sys.loadProgram(p);
    return sys.run().cycles;
}

struct Ablation
{
    const char *name;
    const char *paperRef;
    std::string kernels;
    double (*slowdown)();
};

double
registryAblation(const std::vector<const char *> &kernels,
                 void (*disable)(SystemConfig &), const char *tag)
{
    SystemConfig base = xt910Preset().config;
    SystemConfig off = base;
    disable(off);
    uint64_t cb = 0, co = 0;
    for (const char *k : kernels) {
        cb += kernelCycles(std::string("abl/base/") + k, base, k);
        co += kernelCycles(std::string("abl/") + tag + "/" + k, off, k);
    }
    return double(co) / double(cb);
}

double
loopBufferAblation()
{
    SystemConfig base = xt910Preset().config;
    SystemConfig off = base;
    off.core.lbuf.enabled = false;
    Program p = tinyLoopProgram();
    return double(runProgram(p, off)) / double(runProgram(p, base));
}

double
memDepAblation()
{
    SystemConfig base = xt910Preset().config;
    SystemConfig off = base;
    off.core.memDepPredict = false;
    Program p = violationProgram();
    return double(runProgram(p, off)) / double(runProgram(p, base));
}

double
snoopFilterAblation()
{
    SystemConfig base = xt910Preset().config;
    base.numCores = 4;
    base.mem.l1d.sizeBytes = 32 * 1024; // scans always spill to L2
    SystemConfig off = base;
    off.mem.snoopFilter = false;
    Program p = smpPrivateScanProgram();
    return double(runProgram(p, off)) / double(runProgram(p, base));
}

double
l0BtbAblation()
{
    return registryAblation({"list", "state", "huffman"},
                            [](SystemConfig &c) {
                                c.core.btb.l0Enabled = false;
                                c.core.lbuf.enabled = false;
                            },
                            "l0btb");
}

double
twoLevelBufAblation()
{
    return registryAblation(
        {"state", "tblook", "bitfield"},
        [](SystemConfig &c) { c.core.direction.twoLevelBuf = false; },
        "buf12");
}

double
dualLsuAblation()
{
    return registryAblation(
        {"matrix", "numsort", "stream_copy"},
        [](SystemConfig &c) { c.core.lsuDualIssue = false; }, "lsu");
}

double
pseudoStoreAblation()
{
    return registryAblation(
        {"matrix", "numsort", "idctrn"},
        [](SystemConfig &c) { c.core.pseudoDualStore = false; }, "pds");
}

const Ablation ablations[] = {
    {"loop_buffer", "§III.C", "tiny 5-inst loop", loopBufferAblation},
    {"l0_btb", "§III.B", "list,state,huffman", l0BtbAblation},
    {"two_level_buf", "§III.A", "state,tblook,bitfield",
     twoLevelBufAblation},
    {"dual_issue_lsu", "§V.A", "matrix,numsort,stream_copy",
     dualLsuAblation},
    {"pseudo_dual_store", "§V.B", "matrix,numsort,idctrn",
     pseudoStoreAblation},
    {"mem_dep_predict", "§V.A", "store-load collision loop",
     memDepAblation},
    {"snoop_filter", "§VI", "4-core private L2-resident scans",
     snoopFilterAblation},
};

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    unsigned jobs = bench::stripJobsFlag(&argc, argv);
    benchmark::Initialize(&argc, argv);
    static std::map<std::string, double> memo;
    // Compute every ablation on the run farm up front — each one only
    // builds independent Systems (cachedRun is thread-safe). The
    // registered cases then read the memo.
    {
        constexpr size_t n = sizeof(ablations) / sizeof(ablations[0]);
        std::vector<double> vals(n, 0.0);
        parallelFor(n, resolveJobs(jobs),
                    [&](size_t i) { vals[i] = ablations[i].slowdown(); });
        for (size_t i = 0; i < n; ++i)
            memo.emplace(ablations[i].name, vals[i]);
    }
    auto slowdownOf = [](const Ablation &ab) {
        auto it = memo.find(ab.name);
        if (it == memo.end())
            it = memo.emplace(ab.name, ab.slowdown()).first;
        return it->second;
    };
    for (const Ablation &ab : ablations) {
        benchmark::RegisterBenchmark(
            (std::string("ablation/") + ab.name).c_str(),
            [&ab, &slowdownOf](benchmark::State &st) {
                double s = 0;
                for (auto _ : st)
                    s = slowdownOf(ab);
                st.counters["slowdown"] = s;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\nAblations — cycles with mechanism disabled / "
                "baseline XT-910 (>1.0 means the mechanism helps)\n");
    bench::rule('-', 76);
    std::printf("%-20s %-8s %-34s %9s\n", "mechanism", "paper",
                "workload", "slowdown");
    bench::rule('-', 76);
    for (const Ablation &ab : ablations)
        std::printf("%-20s %-8s %-34s %8.3fx\n", ab.name, ab.paperRef,
                    ab.kernels.c_str(), slowdownOf(ab));
    bench::rule('-', 76);
    return 0;
}
