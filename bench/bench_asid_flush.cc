/**
 * @file
 * §V.E text — 16-bit ASID: "the number of TLB flushes caused by
 * context switch is decreased by almost 10X" versus the narrower ASID
 * it replaces. Modelled with the ASID allocator + TLB over a context-
 * switch churn of processes, for several working-set sizes.
 */

#include "bench_common.h"
#include "mmu/pagetable.h"

namespace xt910
{
namespace
{

uint64_t
flushesWith(unsigned asidBits, unsigned contexts, unsigned switches)
{
    Tlb tlb(TlbParams{}, "tlb");
    AsidAllocator alloc(asidBits);
    Xorshift64 rng(42);
    for (unsigned i = 0; i < switches; ++i) {
        // Round-robin with jitter, like a loaded scheduler.
        uint64_t ctx = (i + rng.below(3)) % contexts;
        alloc.acquire(ctx, tlb);
    }
    return alloc.flushCount();
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);
    const unsigned switches = 200'000;
    for (unsigned contexts : {64u, 300u, 1000u, 5000u}) {
        benchmark::RegisterBenchmark(
            ("asid/contexts" + std::to_string(contexts)).c_str(),
            [contexts](benchmark::State &st) {
                uint64_t n8 = 0, n16 = 0;
                for (auto _ : st) {
                    n8 = flushesWith(8, contexts, switches);
                    n16 = flushesWith(16, contexts, switches);
                }
                st.counters["flushes_8b"] = double(n8);
                st.counters["flushes_16b"] = double(n16);
            })
            ->Iterations(1);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n§V.E — TLB flushes from context switches vs ASID "
                "width (%u switches)\n", switches);
    bench::rule();
    std::printf("%-10s %14s %14s %12s\n", "contexts", "8-bit ASID",
                "16-bit ASID", "reduction");
    bench::rule();
    for (unsigned contexts : {64u, 300u, 1000u, 5000u}) {
        uint64_t n8 = flushesWith(8, contexts, switches);
        uint64_t n16 = flushesWith(16, contexts, switches);
        if (n16 == 0 && n8 > 0)
            std::printf("%-10u %14llu %14llu %12s\n", contexts,
                        static_cast<unsigned long long>(n8),
                        static_cast<unsigned long long>(n16),
                        ">10x (none)");
        else
            std::printf("%-10u %14llu %14llu %11.1fx\n", contexts,
                        static_cast<unsigned long long>(n8),
                        static_cast<unsigned long long>(n16),
                        n16 ? double(n8) / double(n16) : 0.0);
    }
    bench::rule();
    std::printf("paper: almost 10x fewer context-switch TLB flushes; the\n16-bit ASID removes rollover entirely at realistic context\ncounts (a >=10x reduction).\n");
    return 0;
}
