/**
 * @file
 * §X text — SPECInt2006-like comparison: the paper measures XT-910 at
 * 6.11 SPECInt/GHz vs 6.75 for Cortex-A73 (XT-910 ~10% behind on
 * large-footprint code that factors in cache size, misses and DDR
 * latency). This bench runs the large-footprint mix on both models and
 * reports per-GHz rates normalized so A73 matches its paper score.
 */

#include "bench_common.h"

namespace xt910
{
namespace
{

bench::SimResult
runOn(const CorePreset &p)
{
    WorkloadOptions o;
    WorkloadBuild wb = findWorkload("spec_mix").build(o);
    return bench::cachedRun("spec/" + p.name, p.config, wb);
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);
    CorePreset xt = xt910Preset();
    CorePreset a73 = a73Preset();
    for (const CorePreset *p : {&xt, &a73}) {
        CorePreset preset = *p;
        benchmark::RegisterBenchmark(
            ("spec/" + preset.name).c_str(),
            [preset](benchmark::State &st) {
                bench::SimResult r{};
                for (auto _ : st)
                    r = runOn(preset);
                st.counters["cycles"] = double(r.cycles);
                st.counters["ipc"] = r.ipc();
                st.counters["correct"] = r.correct;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    bench::SimResult rx = runOn(xt);
    bench::SimResult ra = runOn(a73);
    // Rate per GHz ~ work per cycle; normalize A73 to its paper score.
    double rateX = rx.perMCycle();
    double rateA = ra.perMCycle();
    double normX = 6.75 * rateX / rateA;

    std::printf("\nSPECInt2006-like (large-footprint mix, L2 misses + "
                "DRAM in play)\n");
    bench::rule();
    std::printf("%-12s %10s %14s %14s\n", "core", "ipc", "SPEC-like/GHz",
                "paper");
    bench::rule();
    std::printf("%-12s %10.3f %14.2f %14s\n", "a73-class", ra.ipc(),
                6.75, "6.75");
    std::printf("%-12s %10.3f %14.2f %14s\n", "xt910", rx.ipc(), normX,
                "6.11 (-10%)");
    bench::rule();
    std::printf("shape: XT-910 slightly behind A73-class on the "
                "memory-system-bound mix (%.0f%%)\n",
                (normX / 6.75 - 1.0) * 100.0);
    return 0;
}
