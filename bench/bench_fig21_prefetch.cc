/**
 * @file
 * Fig. 21 — impact of the multi-mode multi-stream prefetcher on STREAM
 * (§V.C). The paper's scenarios on a HAPS80 FPGA with ~200-cycle
 * memory latency:
 *   a) all prefetches off                         -> 1.0x
 *   b) L1 prefetch on, small distance             -> 3.8x
 *   c) + L2 and TLB prefetch, small distance      -> 4.9x
 *   d) large distance                             -> 5.4x (max)
 *   e) d) but TLB prefetch off                    -> ~2.4% below d)
 *
 * The model runs the stream suite under SV39 paging (4 KiB pages, so
 * cross-page TLB prefetch matters) with the same 200-cycle memory.
 */

#include "bench_common.h"
#include "mmu/pagetable.h"

namespace xt910
{
namespace
{

struct Scenario
{
    const char *name;
    const char *desc;
    bool l1, l2, tlb;
    unsigned distance;
    unsigned depth;
};

const Scenario scenarios[] = {
    {"a", "all prefetch off", false, false, false, 0, 0},
    {"b", "L1 on, small distance", true, false, false, 4, 8},
    {"c", "L1+L2+TLB, small distance", true, true, true, 8, 16},
    {"d", "L1+L2+TLB, large distance", true, true, true, 24, 48},
    {"e", "L1+L2 large distance, TLB off", true, true, false, 24, 48},
};

constexpr Addr tableBase = 0xc000'0000;
constexpr unsigned streamBytes = 1 << 20;

SystemConfig
scenarioConfig(const Scenario &s)
{
    SystemConfig cfg = xt910Preset().config;
    cfg.mem.l2.sizeBytes = 512 * 1024;  // FPGA-sized L2: memory bound
    cfg.mem.dram.latency = 200;         // the paper's ~200 CPU cycles
    cfg.mem.l1d.mshrs = 4;              // FPGA-edition miss parallelism
    cfg.core.prefetch.enableL1 = s.l1;
    cfg.core.prefetch.enableL2 = s.l2;
    cfg.core.prefetch.enableTlb = s.tlb;
    cfg.core.tlbPrefetch = s.tlb;
    cfg.core.prefetch.distance = s.distance;
    cfg.core.prefetch.maxDepth = s.depth;
    cfg.core.translation = TranslationMode::Paged;
    cfg.core.pageTableRoot = tableBase;
    return cfg;
}

uint64_t
streamCycles(const Scenario &s)
{
    static std::map<std::string, uint64_t> cache;
    auto hit = cache.find(s.name);
    if (hit != cache.end())
        return hit->second;

    WorkloadOptions o;
    o.streamBytes = streamBytes;
    uint64_t total = 0;
    for (const Workload &w : workloadsInSuite("stream")) {
        WorkloadBuild wb = w.build(o);
        SystemConfig cfg = scenarioConfig(s);
        System sys(cfg);
        // Identity page tables: code + stream arrays, 4 KiB pages.
        PageTableBuilder ptb(sys.memory(), tableBase);
        Addr root = ptb.createRoot();
        ptb.identityMap(root, wb.program.base, 0x40000,
                        PageSize::Page4K);
        ptb.identityMap(root, 0x9000'0000, 4ull << 20,
                        PageSize::Page4K);
        sys.loadProgram(wb.program);
        RunResult r = sys.run();
        if (wl::readResult(sys.memory(), wb.program) != wb.expected)
            std::fprintf(stderr, "WARNING: %s checksum mismatch\n",
                         w.name.c_str());
        total += r.cycles;
    }
    cache[s.name] = total;
    return total;
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);
    for (const Scenario &s : scenarios) {
        benchmark::RegisterBenchmark(
            (std::string("fig21/") + s.name).c_str(),
            [s](benchmark::State &st) {
                uint64_t c = 0;
                for (auto _ : st)
                    c = streamCycles(s);
                st.counters["cycles"] = double(c);
                st.counters["speedup"] =
                    double(streamCycles(scenarios[0])) / double(c);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\nFig. 21 — prefetch impact on STREAM "
                "(200-cycle memory)\n");
    bench::rule('-', 78);
    std::printf("%-3s %-34s %14s %10s %8s\n", "sc", "configuration",
                "cycles", "speedup", "paper");
    bench::rule('-', 78);
    const double paper[] = {1.0, 3.8, 4.9, 5.4, 5.4 * 0.976};
    double base = double(streamCycles(scenarios[0]));
    int i = 0;
    for (const Scenario &s : scenarios) {
        double c = double(streamCycles(s));
        std::printf("%-3s %-34s %14.0f %9.2fx %7.2fx\n", s.name, s.desc,
                    c, base / c, paper[i++]);
    }
    bench::rule('-', 78);
    std::printf("shape to reproduce: b >> a; c > b; d >= c max; "
                "e slightly below d.\n");
    return 0;
}
