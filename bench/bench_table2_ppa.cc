/**
 * @file
 * Table II — XT-910 core performance in a 12nm FinFET: operating
 * frequency (2.0-2.5 GHz by corner), silicon area per core (0.6 / 0.8
 * mm^2 without/with the vector unit, excluding L2), and dynamic power
 * (~100 uW/MHz per core). Regenerated from the first-order PPA model,
 * plus the 7nm 2.8 GHz experiment mentioned in §II.
 */

#include "bench_common.h"
#include "power/ppa.h"

namespace xt910
{
namespace
{

MemSystemParams
footnoteMem()
{
    // Table II footnote c: 32/64KB L1$, 256/512KB L2$.
    MemSystemParams m;
    m.l1i.sizeBytes = m.l1d.sizeBytes = 64 * 1024;
    m.l2.sizeBytes = 512 * 1024;
    return m;
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);

    benchmark::RegisterBenchmark("table2/ppa", [](benchmark::State &st) {
        PpaResult r{};
        for (auto _ : st)
            r = estimatePpa(CoreParams{}, footnoteMem());
        st.counters["area_mm2"] = r.coreAreaMm2;
        st.counters["freq_ghz"] = r.freqGHz;
        st.counters["uw_per_mhz"] = r.dynUwPerMhz;
    })->Iterations(1);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    CoreParams withVec;
    CoreParams noVec;
    noVec.vecBitsPerCycle = 0;
    MemSystemParams mem = footnoteMem();

    PpaResult lvtV = estimatePpa(withVec, mem);
    PpaResult ulvtV = estimatePpa(withVec, mem, TechNode::Tsmc12,
                                  OperatingPoint::Ulvt1v0);
    PpaResult lvtN = estimatePpa(noVec, mem);
    PpaResult n7 = estimatePpa(withVec, mem, TechNode::Tsmc7);

    std::printf("\nTable II — XT-910 core PPA (12nm FinFET model)\n");
    bench::rule('-', 76);
    std::printf("%-26s %-28s %s\n", "metric", "model", "paper");
    bench::rule('-', 76);
    std::printf("%-26s %.2f ~ %.2f GHz %13s %s\n", "Operating frequency",
                lvtV.freqGHz, ulvtV.freqGHz, "",
                "2.0 ~ 2.5 GHz (TT 85C)");
    std::printf("%-26s %.2f / %.2f mm2 %12s %s\n", "Area per core",
                lvtN.coreAreaMm2, lvtV.coreAreaMm2, "",
                "0.6 / 0.8 mm2 (no-VEC/VEC)");
    std::printf("%-26s ~%.0f uW/MHz %15s %s\n", "Dynamic power",
                lvtN.dynUwPerMhz, "", "~100 uW/MHz (no VEC)");
    std::printf("%-26s %.2f GHz %18s %s\n", "7nm experiment", n7.freqGHz,
                "", "2.8 GHz (7nm FinFET)");
    bench::rule('-', 76);
    std::printf("footnote corners: a) %s  b) %s\n",
                opName(OperatingPoint::Lvt0v8),
                opName(OperatingPoint::Ulvt1v0));
    std::printf("vector unit share: %.2f mm2; cluster L2 (512KB): %.2f "
                "mm2 (excluded from core area, as in the paper)\n",
                lvtV.vecAreaMm2, lvtV.l2AreaMm2);
    return 0;
}
