/**
 * @file
 * Table I — supported core configurations: cores per cluster (1/2/4),
 * L1 I/D of 32/64 KB, L2 of 256 KB..8 MB, vector unit optional. Every
 * combination is validated structurally, and representative topologies
 * run an SMP workload end-to-end on the timing model.
 */

#include "bench_common.h"
#include "uncore/cluster.h"

namespace xt910
{
namespace
{

Program
smpCounterProgram()
{
    using namespace reg;
    Assembler a;
    a.la(a0, "counter");
    a.li(a1, 300);
    a.li(a2, 1);
    a.label("loop");
    a.amoadd_d(zero, a2, a0);
    a.addi(a1, a1, -1);
    a.bnez(a1, "loop");
    a.ebreak();
    a.align(8);
    a.label("counter");
    a.dword(0);
    return a.assemble();
}

struct TopoRun
{
    unsigned cores;
    uint64_t cycles;
    bool correct;
};

TopoRun
runTopology(const ClusterTopology &t)
{
    SystemConfig cfg;
    cfg.numCores = t.totalCores();
    cfg.mem.coresPerCluster = t.coresPerCluster;
    cfg.mem.l1i.sizeBytes = t.l1iBytes;
    cfg.mem.l1d.sizeBytes = t.l1dBytes;
    cfg.mem.l2.sizeBytes = t.l2Bytes;
    if (!t.vectorUnit)
        cfg.core.vecBitsPerCycle = 0;
    System sys(cfg);
    Program p = smpCounterProgram();
    sys.loadProgram(p);
    RunResult r = sys.run();
    uint64_t expect = 300ull * t.totalCores();
    return {t.totalCores(), r.cycles,
            sys.memory().read(p.symbol("counter"), 8) == expect};
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);

    // Representative end-to-end topologies: every cores-per-cluster x
    // clusters combination at the default cache point.
    std::vector<ClusterTopology> reps;
    for (unsigned cpc : {1u, 2u, 4u})
        for (unsigned cl : {1u, 2u, 4u}) {
            ClusterTopology t;
            t.coresPerCluster = cpc;
            t.clusters = cl;
            reps.push_back(t);
        }
    for (const ClusterTopology &t : reps) {
        std::string name = "table1/cores" +
                           std::to_string(t.coresPerCluster) + "x" +
                           std::to_string(t.clusters);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [t](benchmark::State &st) {
                                         TopoRun r{};
                                         for (auto _ : st)
                                             r = runTopology(t);
                                         st.counters["cycles"] =
                                             double(r.cycles);
                                         st.counters["correct"] =
                                             r.correct;
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Structural sweep over the full Table I space.
    unsigned valid = 0;
    for (const ClusterTopology &t : supportedTopologies())
        if (t.validate().empty())
            ++valid;
    std::printf("\nTable I — XT-910 core configurations\n");
    bench::rule();
    std::printf("%-28s %s\n", "feature", "configuration");
    bench::rule();
    std::printf("%-28s %s\n", "Core number per cluster", "1, 2, 4");
    std::printf("%-28s %s\n", "L1 data cache", "32KB, 64KB");
    std::printf("%-28s %s\n", "L1 instruction cache", "32KB, 64KB");
    std::printf("%-28s %s\n", "L2 cache size", "256KB ~ 8MB");
    std::printf("%-28s %s\n", "Vector extension", "yes / no");
    bench::rule();
    std::printf("structural sweep: %u/%zu combinations valid\n", valid,
                supportedTopologies().size());

    std::printf("\nSMP runs (shared-counter kernel, coherence "
                "exercised):\n");
    std::printf("%-10s %-10s %12s %9s\n", "cores/cl", "clusters",
                "cycles", "correct");
    for (const ClusterTopology &t : reps) {
        TopoRun r = runTopology(t);
        std::printf("%-10u %-10u %12llu %9s\n", t.coresPerCluster,
                    t.clusters,
                    static_cast<unsigned long long>(r.cycles),
                    r.correct ? "yes" : "NO");
    }
    return 0;
}
