/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries. Each
 * binary registers google-benchmark cases (one per simulated
 * configuration, single-iteration, reporting counters) and prints the
 * paper-style summary table after the run.
 *
 * Absolute scores are normalized model outputs; the reproduction claim
 * is about the *relative* shape (who wins, by how much, where the
 * crossovers are) — see EXPERIMENTS.md.
 */

#ifndef XT910_BENCH_COMMON_H
#define XT910_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "baseline/presets.h"
#include "common/parallel.h"
#include "core/system.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{
namespace bench
{

/** One simulated run's results. */
struct SimResult
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t workItems = 0;
    bool correct = false;
    /** Host wall-clock seconds inside System::run (non-deterministic —
     *  reported in sidecar files only, never in the stats JSON). */
    double hostSeconds = 0.0;

    /** Host-side simulation speed, millions of guest insts/second. */
    double
    simMips() const
    {
        return hostSeconds > 0 ? double(insts) / hostSeconds / 1e6 : 0.0;
    }

    double
    ipc() const
    {
        return cycles ? double(insts) / double(cycles) : 0.0;
    }

    /** Logical work items per million cycles (a "per-MHz" rate). */
    double
    perMCycle() const
    {
        return cycles ? double(workItems) * 1e6 / double(cycles) : 0.0;
    }
};

/**
 * Run @p wb on @p cfg and check the architectural result. With a
 * non-empty @p tag and XT910_STATS_JSON_DIR set in the environment,
 * the run's full component stats are dumped to
 * $XT910_STATS_JSON_DIR/<tag>.json for offline analysis — the bench
 * tables stay human-readable while every cell stays machine-checkable.
 */
inline SimResult
simulate(const SystemConfig &cfg, const WorkloadBuild &wb,
         const std::string &tag = std::string())
{
    System sys(cfg);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    SimResult s;
    s.cycles = r.cycles;
    s.insts = r.insts;
    s.workItems = wb.workItems;
    s.correct = wl::readResult(sys.memory(), wb.program) == wb.expected;
    s.hostSeconds = r.hostSeconds;
    if (!tag.empty()) {
        if (const char *dir = std::getenv("XT910_STATS_JSON_DIR")) {
            std::string fname = tag;
            for (char &ch : fname)
                if (!std::isalnum(static_cast<unsigned char>(ch)) &&
                    ch != '-' && ch != '.')
                    ch = '_';
            std::ofstream os(std::string(dir) + "/" + fname + ".json");
            if (os) {
                os << "{\n  \"tag\": \"" << tag
                   << "\",\n  \"insts\": " << s.insts
                   << ",\n  \"cycles\": " << s.cycles
                   << ",\n  \"checksum_ok\": "
                   << (s.correct ? "true" : "false")
                   << ",\n  \"stats\": ";
                sys.dumpStatsJson(os, true);
                os << "\n}\n";
            }
            // Host timing goes in a sidecar, never in <tag>.json: the
            // determinism suite compares the stats dumps byte-for-byte
            // across job counts and reruns.
            std::ofstream sp(std::string(dir) + "/" + fname +
                             ".speed.json");
            if (sp) {
                char mips[32];
                std::snprintf(mips, sizeof(mips), "%.3f", s.simMips());
                sp << "{ \"tag\": \"" << tag
                   << "\", \"insts\": " << s.insts
                   << ", \"host_seconds\": " << s.hostSeconds
                   << ", \"mips\": " << mips << " }\n";
            }
        }
    }
    return s;
}

/**
 * Memoized runs keyed by an arbitrary string (also the stats tag).
 * Thread-safe: runFarm prewarms this cache from worker threads, after
 * which the serially-executed bench cases and summary tables are pure
 * lookups. Two threads racing on the same key at worst both simulate
 * it (identical, deterministic results); the first insert wins.
 */
namespace detail
{
inline std::map<std::string, SimResult> &
runCache()
{
    static std::map<std::string, SimResult> cache;
    return cache;
}

inline std::mutex &
runCacheLock()
{
    static std::mutex mu;
    return mu;
}
} // namespace detail

inline SimResult
cachedRun(const std::string &key, const SystemConfig &cfg,
          const WorkloadBuild &wb)
{
    {
        std::lock_guard<std::mutex> lk(detail::runCacheLock());
        auto it = detail::runCache().find(key);
        if (it != detail::runCache().end())
            return it->second;
    }
    SimResult s = simulate(cfg, wb, key);
    std::lock_guard<std::mutex> lk(detail::runCacheLock());
    return detail::runCache().emplace(key, s).first->second;
}

/** One cell of work for runFarm: a keyed, memoized System run. */
struct FarmItem
{
    std::string key;
    SystemConfig cfg;
    WorkloadBuild wb;
};

/**
 * Run every item through cachedRun on a worker pool. Call before
 * benchmark::RunSpecifiedBenchmarks(): the bench cases and summary
 * tables then hit the memoized results in their usual serial order,
 * so tables and stats dumps are identical at any job count. @p jobs:
 * explicit value > XT910_JOBS environment variable > serial.
 */
inline void
runFarm(std::vector<FarmItem> items, unsigned jobs = 0)
{
    // Hardened: a run that throws (assembler bug, invariant failure)
    // is retried once, and if it still fails, a zeroed result with
    // correct=false is cached under its key — the bench tables and
    // every other cell complete instead of the whole binary aborting.
    auto reports = runHardened(
        items.size(), resolveJobs(jobs), FarmPolicy{0.0, 1, 0},
        [&](size_t i, JobContext &) {
            cachedRun(items[i].key, items[i].cfg, items[i].wb);
        });
    for (size_t i = 0; i < reports.size(); ++i) {
        if (reports[i].status == JobStatus::Ok)
            continue;
        std::fprintf(stderr,
                     "warning: bench run '%s' %s after %u attempt(s): "
                     "%s — table cell will read as failed\n",
                     items[i].key.c_str(),
                     jobStatusName(reports[i].status),
                     reports[i].attempts, reports[i].error.c_str());
        std::lock_guard<std::mutex> lk(detail::runCacheLock());
        detail::runCache().emplace(items[i].key, SimResult{});
    }
}

/**
 * Strip --jobs=N / --jobs N from the command line (before
 * benchmark::Initialize, which rejects flags it does not know).
 * Returns the requested job count, 0 when absent (= XT910_JOBS or
 * serial).
 */
inline unsigned
stripJobsFlag(int *argc, char **argv)
{
    unsigned jobs = 0;
    int w = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--jobs=", 0) == 0) {
            jobs = unsigned(std::strtoul(a.c_str() + 7, nullptr, 10));
            continue;
        }
        if (a == "--jobs" && i + 1 < *argc) {
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
            continue;
        }
        argv[w++] = argv[i];
    }
    *argc = w;
    return jobs;
}

/** Emit a table separator / header line helper. */
inline void
rule(char c = '-', int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace xt910

#endif // XT910_BENCH_COMMON_H
