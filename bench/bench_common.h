/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries. Each
 * binary registers google-benchmark cases (one per simulated
 * configuration, single-iteration, reporting counters) and prints the
 * paper-style summary table after the run.
 *
 * Absolute scores are normalized model outputs; the reproduction claim
 * is about the *relative* shape (who wins, by how much, where the
 * crossovers are) — see EXPERIMENTS.md.
 */

#ifndef XT910_BENCH_COMMON_H
#define XT910_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "baseline/presets.h"
#include "core/system.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{
namespace bench
{

/** One simulated run's results. */
struct SimResult
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t workItems = 0;
    bool correct = false;

    double
    ipc() const
    {
        return cycles ? double(insts) / double(cycles) : 0.0;
    }

    /** Logical work items per million cycles (a "per-MHz" rate). */
    double
    perMCycle() const
    {
        return cycles ? double(workItems) * 1e6 / double(cycles) : 0.0;
    }
};

/**
 * Run @p wb on @p cfg and check the architectural result. With a
 * non-empty @p tag and XT910_STATS_JSON_DIR set in the environment,
 * the run's full component stats are dumped to
 * $XT910_STATS_JSON_DIR/<tag>.json for offline analysis — the bench
 * tables stay human-readable while every cell stays machine-checkable.
 */
inline SimResult
simulate(const SystemConfig &cfg, const WorkloadBuild &wb,
         const std::string &tag = std::string())
{
    System sys(cfg);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    SimResult s;
    s.cycles = r.cycles;
    s.insts = r.insts;
    s.workItems = wb.workItems;
    s.correct = wl::readResult(sys.memory(), wb.program) == wb.expected;
    if (!tag.empty()) {
        if (const char *dir = std::getenv("XT910_STATS_JSON_DIR")) {
            std::string fname = tag;
            for (char &ch : fname)
                if (!std::isalnum(static_cast<unsigned char>(ch)) &&
                    ch != '-' && ch != '.')
                    ch = '_';
            std::ofstream os(std::string(dir) + "/" + fname + ".json");
            if (os) {
                os << "{\n  \"tag\": \"" << tag
                   << "\",\n  \"insts\": " << s.insts
                   << ",\n  \"cycles\": " << s.cycles
                   << ",\n  \"checksum_ok\": "
                   << (s.correct ? "true" : "false")
                   << ",\n  \"stats\": ";
                sys.dumpStatsJson(os, true);
                os << "\n}\n";
            }
        }
    }
    return s;
}

/** Memoized runs keyed by an arbitrary string (also the stats tag). */
inline SimResult
cachedRun(const std::string &key, const SystemConfig &cfg,
          const WorkloadBuild &wb)
{
    static std::map<std::string, SimResult> cache;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    SimResult s = simulate(cfg, wb, key);
    cache.emplace(key, s);
    return s;
}

/** Emit a table separator / header line helper. */
inline void
rule(char c = '-', int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace xt910

#endif // XT910_BENCH_COMMON_H
