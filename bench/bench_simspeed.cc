/**
 * @file
 * Host-side simulation throughput: simulated MIPS (millions of guest
 * instructions retired per host second) per workload, with the
 * predecoded basic-block fast path on ("block") versus the legacy
 * per-PC decode cache ("legacy"). Two modes per workload:
 *
 *  - iss:    functional-only (Iss::run, no timing cores) — isolates
 *            the decode path, where the block cache shows directly;
 *  - system: full timing simulation (System::run) — what users feel;
 *            the OoO model dominates here, so the decode gain is
 *            diluted but the absolute MIPS is the number to track.
 *
 * This is the one bench about the simulator itself, not the modelled
 * core: it writes BENCH_simspeed.json so sim-speed regressions are
 * tracked next to the model outputs. Guest-visible results are
 * asserted identical between the two decode paths — the fast path
 * must change wall-clock only.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/presets.h"
#include "common/log.h"
#include "common/version.h"
#include "core/system.h"
#include "func/iss.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{
namespace
{

struct Pair
{
    double blockMips = 0.0;
    double legacyMips = 0.0;

    double
    speedup() const
    {
        return legacyMips > 0 ? blockMips / legacyMips : 0.0;
    }
};

/** Functional-only MIPS, best of @p reps (max: least host noise). */
double
issMips(const WorkloadBuild &wb, bool blockCache, int reps,
        uint64_t *instsOut)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        Memory mem;
        IssOptions io;
        io.blockCache = blockCache;
        Iss iss(mem, 1, io);
        iss.loadProgram(wb.program);
        auto t0 = std::chrono::steady_clock::now();
        uint64_t insts = iss.run();
        double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        *instsOut = insts;
        if (sec > 0)
            best = std::max(best, double(insts) / sec / 1e6);
    }
    return best;
}

/** Full-system MIPS, best of @p reps; also checks the checksum. */
double
systemMips(const SystemConfig &cfg, const WorkloadBuild &wb, int reps,
           uint64_t *cyclesOut)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        System sys(cfg);
        sys.loadProgram(wb.program);
        RunResult r = sys.run();
        *cyclesOut = r.cycles;
        xt_assert(wl::readResult(sys.memory(), wb.program) ==
                      wb.expected,
                  "checksum mismatch");
        best = std::max(best, r.simMips());
    }
    return best;
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;

    std::string out = "BENCH_simspeed.json";
    int reps = 3;
    bool issOnly = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            out = a.substr(6);
        else if (a.rfind("--reps=", 0) == 0)
            reps = std::atoi(a.c_str() + 7);
        else if (a == "--iss-only")
            issOnly = true;
        else if (a[0] != '-')
            names.push_back(a);
        else {
            std::fprintf(stderr,
                         "usage: %s [--out=FILE] [--reps=N] "
                         "[--iss-only] [workload...]\n",
                         argv[0]);
            return 2;
        }
    }
    if (names.empty())
        // The coremark-like suite: the short-loop scalar code the
        // block cache targets, plus crc (the tightest loop of the
        // set).
        names = {"list", "matrix", "state", "crc"};
    if (reps < 1)
        reps = 1;

    struct Row
    {
        std::string name;
        uint64_t insts = 0;
        Pair iss, system;
    };
    std::vector<Row> rows;

    WorkloadOptions o;
    SystemConfig cfgBlock = xt910Preset().config;
    cfgBlock.iss.blockCache = true;
    SystemConfig cfgLegacy = cfgBlock;
    cfgLegacy.iss.blockCache = false;

    std::printf("sim-speed: host MIPS, block cache vs legacy decode "
                "(best of %d)\n",
                reps);
    std::printf("%-10s %10s | %8s %8s %7s | %8s %8s %7s\n", "workload",
                "insts", "iss:blk", "iss:leg", "x", "sys:blk",
                "sys:leg", "x");
    for (const std::string &n : names) {
        WorkloadBuild wb = findWorkload(n).build(o);
        Row row;
        row.name = n;
        uint64_t instsB = 0, instsL = 0;
        row.iss.blockMips = issMips(wb, true, reps, &instsB);
        row.iss.legacyMips = issMips(wb, false, reps, &instsL);
        // The decode path must be invisible to the guest.
        xt_assert(instsB == instsL, "decode paths disagree on ", n,
                  ": block retired ", instsB, " legacy ", instsL);
        row.insts = instsB;
        if (!issOnly) {
            uint64_t cycB = 0, cycL = 0;
            row.system.blockMips =
                systemMips(cfgBlock, wb, reps, &cycB);
            row.system.legacyMips =
                systemMips(cfgLegacy, wb, reps, &cycL);
            xt_assert(cycB == cycL, "decode paths disagree on ", n,
                      " cycles: block ", cycB, " legacy ", cycL);
        }
        std::printf("%-10s %10llu | %8.2f %8.2f %6.2fx | %8.2f %8.2f "
                    "%6.2fx\n",
                    n.c_str(), (unsigned long long)row.insts,
                    row.iss.blockMips, row.iss.legacyMips,
                    row.iss.speedup(), row.system.blockMips,
                    row.system.legacyMips, row.system.speedup());
        rows.push_back(std::move(row));
    }

    double geo = 1.0;
    unsigned cnt = 0;
    for (const Row &r : rows) {
        if (r.iss.speedup() > 0) {
            geo *= r.iss.speedup();
            ++cnt;
        }
    }
    geo = cnt ? std::pow(geo, 1.0 / double(cnt)) : 0.0;
    std::printf("geomean iss block/legacy speedup: %.2fx\n", geo);

    // System-mode absolute throughput: the headline number for "is the
    // timing model fast enough to serve" (ROADMAP item 1).
    double geoSys = 1.0;
    unsigned cntSys = 0;
    for (const Row &r : rows) {
        if (r.system.blockMips > 0) {
            geoSys *= r.system.blockMips;
            ++cntSys;
        }
    }
    geoSys = cntSys ? std::pow(geoSys, 1.0 / double(cntSys)) : 0.0;
    if (cntSys)
        std::printf("geomean system-mode MIPS (block): %.2f\n", geoSys);

    // Trajectory: carry the previous runs' history forward and append
    // *this* run's geomean as the newest point. (Appending the
    // previous file's top-level value instead — as this used to do —
    // left the trajectory perpetually one run behind: the current
    // result only landed in history on the *next* run, and never at
    // all if the bench wasn't rerun.)
    std::vector<double> history;
    {
        std::ifstream is(out);
        if (is) {
            std::string prev((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
            size_t h = prev.find("\"history_system_block_mips\"");
            if (h != std::string::npos) {
                size_t b = prev.find('[', h);
                size_t e = prev.find(']', h);
                if (b != std::string::npos && e != std::string::npos) {
                    std::string list = prev.substr(b + 1, e - b - 1);
                    for (char &ch : list)
                        if (ch == ',')
                            ch = ' ';
                    std::istringstream ls(list);
                    double v;
                    while (ls >> v)
                        history.push_back(v);
                }
            }
        }
    }
    if (cntSys)
        history.push_back(geoSys);

    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    // Provenance: MIPS numbers are host-dependent, so the artifact
    // records which binary produced them (git describe + schema).
    os << "{\n  \"buildInfo\": \""
       << buildInfo("bench_simspeed") << "\",\n";
    os << "  \"reps\": " << reps << ",\n  \"workloads\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "    { \"name\": \"%s\", \"insts\": %llu,\n"
            "      \"iss\": { \"block_mips\": %.3f, \"legacy_mips\": "
            "%.3f, \"speedup\": %.3f },\n"
            "      \"system\": { \"block_mips\": %.3f, "
            "\"legacy_mips\": %.3f, \"speedup\": %.3f } }%s\n",
            r.name.c_str(), (unsigned long long)r.insts,
            r.iss.blockMips, r.iss.legacyMips, r.iss.speedup(),
            r.system.blockMips, r.system.legacyMips,
            r.system.speedup(), i + 1 < rows.size() ? "," : "");
        os << buf;
    }
    char geobuf[64];
    std::snprintf(geobuf, sizeof(geobuf), "%.3f", geo);
    os << "  ],\n  \"geomean_iss_speedup\": " << geobuf << ",\n";
    std::snprintf(geobuf, sizeof(geobuf), "%.3f", geoSys);
    os << "  \"geomean_system_block_mips\": " << geobuf << ",\n";
    os << "  \"history_system_block_mips\": [";
    for (size_t i = 0; i < history.size(); ++i) {
        std::snprintf(geobuf, sizeof(geobuf), "%.3f", history[i]);
        os << (i ? ", " : "") << geobuf;
    }
    os << "]\n}\n";
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
