/**
 * @file
 * Fig. 18 — EEMBC(-automotive-like) performance normalized to
 * Cortex-A73. The paper shows XT-910 roughly on par with the A73 with
 * per-kernel scatter. Normalized performance here is
 * (A73 cycles / XT-910 cycles) x (frequency ratio).
 */

#include <cmath>

#include "bench_common.h"

namespace xt910
{
namespace
{

double
normalizedVsA73(const Workload &w, const CorePreset &xt,
                const CorePreset &a73)
{
    WorkloadOptions o;
    WorkloadBuild wb = w.build(o);
    auto sx = bench::cachedRun("fig18/xt/" + w.name, xt.config, wb);
    auto sa = bench::cachedRun("fig18/a73/" + w.name, a73.config, wb);
    double cycleRatio = double(sa.cycles) / double(sx.cycles);
    return cycleRatio * (xt.freqGHz / a73.freqGHz);
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    unsigned jobs = bench::stripJobsFlag(&argc, argv);
    benchmark::Initialize(&argc, argv);
    CorePreset xt = xt910Preset();
    CorePreset a73 = a73Preset();
    auto suite = workloadsInSuite("eembc");
    {
        WorkloadOptions o;
        std::vector<bench::FarmItem> items;
        for (const Workload &w : suite) {
            WorkloadBuild wb = w.build(o);
            items.push_back({"fig18/xt/" + w.name, xt.config, wb});
            items.push_back({"fig18/a73/" + w.name, a73.config, wb});
        }
        bench::runFarm(std::move(items), jobs);
    }
    for (const Workload &w : suite) {
        benchmark::RegisterBenchmark(
            ("fig18/" + w.name).c_str(),
            [w, xt, a73](benchmark::State &st) {
                double n = 0;
                for (auto _ : st)
                    n = normalizedVsA73(w, xt, a73);
                st.counters["norm_vs_a73"] = n;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\nFig. 18 — EEMBC-like, normalized to Cortex-A73-class"
                " (=1.0)\n");
    bench::rule();
    std::printf("%-10s %16s\n", "kernel", "xt910 / a73");
    bench::rule();
    double geo = 1.0;
    for (const Workload &w : suite) {
        double n = normalizedVsA73(w, xt, a73);
        geo *= n;
        std::printf("%-10s %16.2f\n", w.name.c_str(), n);
    }
    geo = std::pow(geo, 1.0 / double(suite.size()));
    bench::rule();
    std::printf("%-10s %16.2f\n", "geomean", geo);
    std::printf("paper: XT-910 roughly on par with A73 across the "
                "suite, with per-kernel scatter.\n");
    return 0;
}
