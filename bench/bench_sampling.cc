/**
 * @file
 * Sampled-simulation accuracy/speed tracking: for each workload, a
 * full detailed run (ground truth: true cycle count, host seconds)
 * against the sampled pipeline (src/sample: functional fast-forward +
 * detailed timing on selected intervals), reporting end-to-end
 * speedup, the CPI estimate's relative error versus truth, and the
 * per-figure 95% error bars the estimator attaches.
 *
 * Like bench_simspeed this is a bench about the *simulator*, not the
 * modelled core: it writes BENCH_sampling.json so the sampling
 * contract (the largest workload at >= 5x speedup with small CPI
 * error, per tests/perf/sample_smoke.cmake) is tracked next to the
 * model outputs. The workload set is deliberately two-sided:
 *
 *  - crc: homogeneous steady-state loop — the case interval sampling
 *    is built for; a handful of intervals lands within ~0.1%.
 *  - spec_mix: distinct program phases — systematic interval
 *    selection aliases against the phase structure, and the honest
 *    numbers (error in the CI-bar ballpark, modest speedup at the
 *    interval count needed) document that limitation rather than hide
 *    it. DESIGN.md "Sampled simulation" discusses the tradeoff.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "baseline/presets.h"
#include "common/log.h"
#include "core/system.h"
#include "sample/sample.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{
namespace
{

/** One benched configuration: workload + scale + sampling policy. */
struct Case
{
    const char *name;
    unsigned scale;
    sample::SampleConfig sc;
};

struct Row
{
    std::string label;
    uint64_t totalInsts = 0;
    uint64_t trueCycles = 0;
    double fullSecs = 0.0;
    sample::SampleReport rep;
    double sampleSecs = 0.0;

    double
    speedup() const
    {
        return sampleSecs > 0 ? fullSecs / sampleSecs : 0.0;
    }

    double
    cpiErrPct() const
    {
        if (!trueCycles)
            return 0.0;
        double d = double(rep.estCycles) - double(trueCycles);
        return 100.0 * (d < 0 ? -d : d) / double(trueCycles);
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

Row
runCase(const SystemConfig &cfg, const Case &c)
{
    WorkloadOptions o;
    o.scale = c.scale;
    WorkloadBuild wb = findWorkload(c.name).build(o);

    Row row;
    row.label = std::string(c.name) + "@" + std::to_string(c.scale);

    // Ground truth: one full detailed run (cycle counts are
    // deterministic; only the host timing is noisy, and that noise is
    // the quantity under test, so no best-of-N games).
    {
        System sys(cfg);
        sys.loadProgram(wb.program);
        auto t0 = std::chrono::steady_clock::now();
        RunResult r = sys.run();
        row.fullSecs = secondsSince(t0);
        row.trueCycles = r.cycles;
        row.totalInsts = r.insts;
        xt_assert(wl::readResult(sys.memory(), wb.program) ==
                      wb.expected,
                  "full-run checksum mismatch on ", row.label);
    }

    sample::SampleHooks hooks;
    hooks.checkResult = [&wb](System &sys) {
        return wl::readResult(sys.memory(), wb.program) == wb.expected;
    };
    auto t0 = std::chrono::steady_clock::now();
    row.rep = sample::runSampled(cfg, wb.program, c.sc, 1, hooks);
    row.sampleSecs = secondsSince(t0);
    xt_assert(row.rep.checksumOk, "sampled checksum mismatch on ",
              row.label);
    xt_assert(row.rep.totalInsts == row.totalInsts,
              "sampled/full instruction counts disagree on ",
              row.label);
    return row;
}

void
jsonEstimate(std::ostream &os, const char *key,
             const sample::Estimate &e, bool last = false)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"%s\": [%.6f, %.6f]%s", key,
                  e.value, e.ci95, last ? "" : ", ");
    os << buf;
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;

    std::string out = "BENCH_sampling.json";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            out = a.substr(6);
        else {
            std::fprintf(stderr, "usage: %s [--out=FILE]\n", argv[0]);
            return 2;
        }
    }

    // crc@64 is the largest workload of the set by retired
    // instructions and the acceptance case (>= 5x, tight error);
    // crc@16 shows the parameters transfer down-scale; spec_mix@16 is
    // the phase-heavy honest case at the interval count its phases
    // demand.
    sample::SampleConfig crcSc;
    crcSc.interval = 200000;
    crcSc.count = 8;
    crcSc.warmup = 10000;
    sample::SampleConfig crcSmall = crcSc;
    crcSmall.count = 4;
    sample::SampleConfig mixSc;
    mixSc.interval = 500000;
    mixSc.count = 21;
    mixSc.warmup = 50000;
    const std::vector<Case> cases = {
        {"crc", 64, crcSc},
        {"crc", 16, crcSmall},
        {"spec_mix", 16, mixSc},
    };

    SystemConfig cfg = xt910Preset().config;

    std::printf("sampled vs full detailed (single host thread)\n");
    std::printf("%-12s %10s | %8s %8s | %8s %8s %7s %7s\n", "workload",
                "insts", "true cyc", "est cyc", "full s", "samp s",
                "speedup", "err%");
    std::vector<Row> rows;
    for (const Case &c : cases) {
        Row row = runCase(cfg, c);
        std::printf(
            "%-12s %10llu | %8llu %8llu | %8.3f %8.3f %6.2fx %6.3f\n",
            row.label.c_str(), (unsigned long long)row.totalInsts,
            (unsigned long long)row.trueCycles,
            (unsigned long long)row.rep.estCycles, row.fullSecs,
            row.sampleSecs, row.speedup(), row.cpiErrPct());
        rows.push_back(std::move(row));
    }

    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    os << "{\n  \"workloads\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const sample::SampleReport &rep = r.rep;
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    { \"name\": \"%s\", \"total_insts\": %llu,\n"
            "      \"sample\": { \"interval\": %llu, \"count\": %u, "
            "\"warmup\": %llu, \"measured\": %zu, "
            "\"coverage\": %.6f },\n"
            "      \"full\": { \"cycles\": %llu, \"host_s\": %.3f },\n"
            "      \"sampled\": { \"est_cycles\": %llu, "
            "\"host_s\": %.3f,\n        ",
            r.label.c_str(), (unsigned long long)r.totalInsts,
            (unsigned long long)rep.cfgUsed.interval, rep.cfgUsed.count,
            (unsigned long long)rep.cfgUsed.warmup,
            rep.intervals.size(), rep.coverage,
            (unsigned long long)r.trueCycles, r.fullSecs,
            (unsigned long long)rep.estCycles, r.sampleSecs);
        os << buf;
        jsonEstimate(os, "cpi", rep.cpi);
        jsonEstimate(os, "retiring", rep.retiring);
        jsonEstimate(os, "backend_mem", rep.backendMem);
        jsonEstimate(os, "l1d_mpki", rep.l1dMpki);
        jsonEstimate(os, "branch_mpki", rep.branchMpki, true);
        std::snprintf(buf, sizeof(buf),
                      " },\n      \"speedup\": %.3f, "
                      "\"cpi_err_pct\": %.4f }%s\n",
                      r.speedup(), r.cpiErrPct(),
                      i + 1 < rows.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
