/**
 * @file
 * Fig. 19 — NBench-like performance normalized to Cortex-A73 (the
 * paper: "overall, the performance of XT-910 is on par with the ARM
 * Cortex-A73").
 */

#include <cmath>

#include "bench_common.h"

namespace xt910
{
namespace
{

double
normalizedVsA73(const Workload &w, const CorePreset &xt,
                const CorePreset &a73)
{
    WorkloadOptions o;
    WorkloadBuild wb = w.build(o);
    auto sx = bench::cachedRun("fig19/xt/" + w.name, xt.config, wb);
    auto sa = bench::cachedRun("fig19/a73/" + w.name, a73.config, wb);
    return double(sa.cycles) / double(sx.cycles) *
           (xt.freqGHz / a73.freqGHz);
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    unsigned jobs = bench::stripJobsFlag(&argc, argv);
    benchmark::Initialize(&argc, argv);
    CorePreset xt = xt910Preset();
    CorePreset a73 = a73Preset();
    auto suite = workloadsInSuite("nbench");
    {
        WorkloadOptions o;
        std::vector<bench::FarmItem> items;
        for (const Workload &w : suite) {
            WorkloadBuild wb = w.build(o);
            items.push_back({"fig19/xt/" + w.name, xt.config, wb});
            items.push_back({"fig19/a73/" + w.name, a73.config, wb});
        }
        bench::runFarm(std::move(items), jobs);
    }
    for (const Workload &w : suite) {
        benchmark::RegisterBenchmark(
            ("fig19/" + w.name).c_str(),
            [w, xt, a73](benchmark::State &st) {
                double n = 0;
                for (auto _ : st)
                    n = normalizedVsA73(w, xt, a73);
                st.counters["norm_vs_a73"] = n;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\nFig. 19 — NBench-like, normalized to Cortex-A73-class"
                " (=1.0)\n");
    bench::rule();
    std::printf("%-10s %16s\n", "kernel", "xt910 / a73");
    bench::rule();
    double geo = 1.0;
    for (const Workload &w : suite) {
        double n = normalizedVsA73(w, xt, a73);
        geo *= n;
        std::printf("%-10s %16.2f\n", w.name.c_str(), n);
    }
    geo = std::pow(geo, 1.0 / double(suite.size()));
    bench::rule();
    std::printf("%-10s %16.2f\n", "geomean", geo);
    std::printf("paper: on par with A73 overall.\n");
    return 0;
}
