/**
 * @file
 * Fig. 20 — performance of XT-910 with instruction extensions and the
 * co-optimized compiler, normalized to the native RISC-V ISA and
 * compiler. The paper reports ~20% overall improvement. Each kernel is
 * built in both code-generation flavours and run on the same XT-910
 * model; the speedup isolates the ISA+compiler delta.
 */

#include <cmath>

#include "bench_common.h"

namespace xt910
{
namespace
{

double
extensionSpeedup(const Workload &w, const CorePreset &xt)
{
    WorkloadOptions native, ext;
    ext.extended = true;
    auto sn = bench::cachedRun("fig20/native/" + w.name, xt.config,
                               w.build(native));
    auto se = bench::cachedRun("fig20/ext/" + w.name, xt.config,
                               w.build(ext));
    return double(sn.cycles) / double(se.cycles);
}

} // namespace
} // namespace xt910

int
main(int argc, char **argv)
{
    using namespace xt910;
    benchmark::Initialize(&argc, argv);
    CorePreset xt = xt910Preset();
    // Kernels whose hot loops exercise the §VIII extensions and §IX
    // compiler optimizations.
    std::vector<Workload> kernels;
    for (const char *n :
         {"list", "matrix", "state", "crc", "a2time", "canrdr", "iirflt", "pntrch", "tblook", "fpemu", "idea", "huffman",
          "mac_scalar", "blockchain"})
        kernels.push_back(findWorkload(n));

    for (const Workload &w : kernels) {
        benchmark::RegisterBenchmark(
            ("fig20/" + w.name).c_str(),
            [w, xt](benchmark::State &st) {
                double s = 0;
                for (auto _ : st)
                    s = extensionSpeedup(w, xt);
                st.counters["speedup"] = s;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\nFig. 20 — extensions + optimized compiler vs native "
                "ISA/compiler (native = 1.0)\n");
    bench::rule();
    std::printf("%-12s %12s\n", "kernel", "speedup");
    bench::rule();
    double geo = 1.0;
    for (const Workload &w : kernels) {
        double s = extensionSpeedup(w, xt);
        geo *= s;
        std::printf("%-12s %12.3f\n", w.name.c_str(), s);
    }
    geo = std::pow(geo, 1.0 / double(kernels.size()));
    bench::rule();
    std::printf("%-12s %12.3f\n", "geomean", geo);
    std::printf("paper: ~1.20x overall from custom instructions plus "
                "compiler co-optimization.\n");
    return 0;
}
